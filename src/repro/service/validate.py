"""Validator for ``flashflow-service/1`` daemon journals.

The journal-schema twin of :mod:`repro.obs.validate`: checks that every
line parses as a JSON object with a ``type`` (tolerating one truncated
tail line -- the valid-prefix guarantee of a killed daemon), that the
first record is a ``flashflow-service/1`` manifest carrying the
provenance fields and the service config, and that the record stream is
*coherent*: period indices advance monotonically and contiguously
across resumes, every completed period was started, every ``churn`` /
``round`` / ``published`` / ``span`` record sits inside its period,
each period boundary writes a snapshot whose ``next_period`` matches,
and a journal claiming completion ends with ``complete: true``. CI's
``service-smoke`` job runs a short churned deployment, kills it at a
period boundary, resumes it, and pipes the journal through::

    PYTHONPATH=src python -m repro.service.validate /tmp/service.jsonl
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.service.state import SERVICE_SCHEMA, Snapshot

__all__ = ["JournalValidationError", "validate_journal"]

#: Manifest keys every journal must carry (run_manifest provenance +
#: the service config).
MANIFEST_REQUIRED = (
    "schema", "run_id", "generated_unix", "scenario", "seed",
    "cpu_count", "python", "config",
)

KNOWN_TYPES = (
    "manifest", "period_started", "churn", "round", "published", "span",
    "period_completed", "snapshot", "resumed", "end",
)


class JournalValidationError(ValueError):
    """A journal file violated the flashflow-service/1 schema."""


def _fail(lineno: int, message: str) -> None:
    raise JournalValidationError(f"line {lineno}: {message}")


def validate_journal(path) -> dict:
    """Validate one journal; returns summary stats or raises.

    The returned dict carries ``periods_completed`` / ``snapshots`` /
    ``published`` / ``churn_events`` / ``span_names`` / ``resumes`` /
    ``complete`` so callers (tests, CI) can assert on journal shape
    beyond mere validity.
    """
    path = pathlib.Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise JournalValidationError(f"{path}: empty journal")
    records: list[tuple[int, dict]] = []
    truncated_tail = False
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            _fail(lineno, "blank line in journal")
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                truncated_tail = True
                break  # a killed daemon may leave one partial tail line
            _fail(lineno, f"unparseable JSON: {exc}")
        if not isinstance(record, dict) or "type" not in record:
            _fail(lineno, "record is not an object with a 'type'")
        records.append((lineno, record))

    if not records:
        raise JournalValidationError(f"{path}: no complete records")

    lineno, manifest = records[0]
    if manifest["type"] != "manifest":
        _fail(lineno, "first record must be the manifest")
    for key in MANIFEST_REQUIRED:
        if key not in manifest:
            _fail(lineno, f"manifest missing required key {key!r}")
    if manifest["schema"] != SERVICE_SCHEMA:
        _fail(lineno, f"unknown schema {manifest['schema']!r}")

    periods_started: list[int] = []
    periods_completed: list[int] = []
    snapshots = 0
    published = 0
    churn_events = 0
    resumes = 0
    span_names: set[str] = set()
    open_period: int | None = None
    expected_next = 0
    last_snapshot_next: int | None = None
    complete = False

    for lineno, record in records[1:]:
        kind = record["type"]
        if kind not in KNOWN_TYPES:
            _fail(lineno, f"unknown record type {kind!r}")
        if kind == "manifest":
            _fail(lineno, "duplicate manifest")
        elif kind == "period_started":
            period = record.get("period")
            if not isinstance(period, int) or period < 0:
                _fail(lineno, f"period_started period {period!r} invalid")
            if open_period is not None:
                _fail(
                    lineno,
                    f"period {period} started while {open_period} is open",
                )
            if period != expected_next:
                _fail(
                    lineno,
                    f"period {period} started out of order "
                    f"(expected {expected_next})",
                )
            open_period = period
            periods_started.append(period)
        elif kind in ("churn", "round", "published", "span"):
            period = record.get("period")
            # Spans carry durations, so they are written on *exit* and
            # legitimately trail the period_completed that closed their
            # period; everything else must sit inside an open period.
            in_open = open_period is not None and period == open_period
            trails = (
                kind == "span"
                and open_period is None
                and period == expected_next - 1
            )
            if not (in_open or trails):
                _fail(
                    lineno,
                    f"{kind} record for period {period!r} "
                    f"outside an open period (open: {open_period})",
                )
            if kind == "churn":
                events = record.get("events")
                if not isinstance(events, list):
                    _fail(lineno, "churn record has no events list")
                churn_events += len(events)
            elif kind == "published":
                if "sha256" not in record:
                    _fail(lineno, "published record has no sha256")
                published += 1
            elif kind == "span":
                for key in ("name", "wall_seconds", "cpu_seconds"):
                    if key not in record:
                        _fail(lineno, f"span missing {key!r}")
                if record["wall_seconds"] < 0 or record["cpu_seconds"] < 0:
                    _fail(lineno, "span has negative time")
                span_names.add(record["name"])
        elif kind == "period_completed":
            if open_period is None or record.get("period") != open_period:
                _fail(
                    lineno,
                    f"period_completed for {record.get('period')!r} "
                    f"does not match open period {open_period}",
                )
            if "estimates_sha256" not in record:
                _fail(lineno, "period_completed has no estimates_sha256")
            periods_completed.append(open_period)
            expected_next = open_period + 1
            open_period = None
        elif kind == "snapshot":
            if open_period is not None:
                _fail(lineno, "snapshot inside an open period")
            try:
                snapshot = Snapshot.from_dict(record)
            except Exception as exc:
                _fail(lineno, f"unloadable snapshot: {exc}")
            if snapshot.next_period != expected_next:
                _fail(
                    lineno,
                    f"snapshot next_period {snapshot.next_period} != "
                    f"expected {expected_next}",
                )
            last_snapshot_next = snapshot.next_period
            snapshots += 1
        elif kind == "resumed":
            if open_period is not None:
                _fail(lineno, "resumed inside an open period")
            if record.get("next_period") != expected_next:
                _fail(
                    lineno,
                    f"resumed at {record.get('next_period')!r}, journal "
                    f"prefix expects {expected_next}",
                )
            resumes += 1
        elif kind == "end":
            if open_period is not None:
                _fail(lineno, "end record inside an open period")
            complete = bool(record.get("complete"))

    if open_period is not None and not truncated_tail:
        # A truncated tail legitimately strands an open period (killed
        # mid-period); a cleanly written journal must close them all.
        raise JournalValidationError(
            f"{path}: period {open_period} never completed"
        )
    if periods_completed and snapshots == 0:
        raise JournalValidationError(
            f"{path}: completed periods but no snapshot"
        )
    configured = manifest["config"].get("periods")
    if complete and configured is not None and expected_next < configured:
        raise JournalValidationError(
            f"{path}: journal claims completion at period {expected_next} "
            f"of {configured}"
        )

    return {
        "manifest": manifest,
        "periods_completed": len(periods_completed),
        "snapshots": snapshots,
        "published": published,
        "churn_events": churn_events,
        "resumes": resumes,
        "span_names": sorted(span_names),
        "truncated_tail": truncated_tail,
        "last_snapshot_next": last_snapshot_next,
        "complete": complete,
        "records": len(records),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.validate", description=__doc__
    )
    parser.add_argument(
        "journal", type=pathlib.Path, help="service journal JSONL file"
    )
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--expect-complete",
        action="store_true",
        help="also fail unless the journal ends complete",
    )
    args = parser.parse_args(argv)
    try:
        stats = validate_journal(args.journal)
    except (JournalValidationError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if args.expect_complete and not stats["complete"]:
        print("INVALID: journal does not end complete", file=sys.stderr)
        return 1
    if not args.quiet:
        manifest = stats["manifest"]
        print(
            f"valid {SERVICE_SCHEMA}: {stats['periods_completed']} "
            f"period(s) completed, {stats['snapshots']} snapshot(s), "
            f"{stats['published']} published file(s), "
            f"{stats['churn_events']} churn event(s), "
            f"{stats['resumes']} resume(s); "
            f"scenario={manifest.get('scenario')!r} "
            f"seed={manifest.get('seed')} complete={stats['complete']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
