"""The daemon's append-only JSONL event log (``flashflow-service/1``).

Same discipline as :class:`repro.obs.export.JsonlTraceWriter` (the
``flashflow-trace/1`` substrate this format deliberately mirrors): one
JSON object per line, the first line a manifest, every line flushed as
written -- so a killed daemon always leaves a valid prefix that
:func:`read_journal` can load and :mod:`repro.service.validate` can
check. Unlike a trace, the journal is **appended to across daemon
lifetimes**: a resumed daemon reopens the same file, writes a
``resumed`` marker, and keeps streaming, so the log is the one durable
artifact of the whole deployment.

Record types:

- ``manifest`` -- schema, run id, provenance (cpu_count, python, git
  rev), and the full :class:`~repro.service.state.ServiceConfig`;
- ``period_started`` / ``period_completed`` -- period boundaries, the
  latter carrying the estimates digest and error-vs-truth stats;
- ``churn`` -- the period's applied churn events and schedule counts;
- ``round`` -- one campaign round's aggregate outcome;
- ``published`` -- a bandwidth file's path, line count, and sha256;
- ``span`` -- service-layer span timings (``service.period``,
  ``service.churn.applied``, ``service.publish``);
- ``snapshot`` -- the inline durable state
  (:class:`~repro.service.state.Snapshot` + a metrics snapshot);
- ``resumed`` -- a new daemon process took over at this point;
- ``end`` -- a daemon exited cleanly (``complete`` tells whether the
  whole configured deployment is done or a resume is expected).
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.export import run_manifest
from repro.service.state import SERVICE_SCHEMA, ServiceConfig, Snapshot

__all__ = [
    "ServiceJournal",
    "last_snapshot",
    "read_journal",
    "service_manifest",
]


def service_manifest(config: ServiceConfig) -> dict:
    """The journal's line-1 manifest for one daemon launch."""
    manifest = run_manifest(
        scenario_name=config.scenario,
        seed=config.effective_seed,
        backend=config.execution.backend,
    )
    manifest["schema"] = SERVICE_SCHEMA
    manifest["config"] = config.to_dict()
    return manifest


class ServiceJournal:
    """Append-only JSONL writer with flush-per-line durability."""

    def __init__(self, path, manifest: dict | None = None,
                 resume: bool = False):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            self._trim_partial_tail()
        self._fh = self.path.open("a" if resume else "w", encoding="utf-8")
        self._closed = False
        if not resume:
            if manifest is None:
                raise ValueError("a fresh journal needs a manifest")
            self.append(manifest)

    def _trim_partial_tail(self) -> None:
        """Drop a killed-mid-write partial final line before appending.

        The writer terminates every complete record with a newline, so
        any non-newline-terminated tail is a torn write; appending after
        it would corrupt the journal mid-file.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return
        if data and not data.endswith(b"\n"):
            cut = data.rfind(b"\n")
            self.path.write_bytes(data[: cut + 1] if cut >= 0 else b"")

    def append(self, record: dict) -> None:
        if self._closed:
            return
        self._fh.write(json.dumps(record, default=repr) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()


def read_journal(path) -> list[dict]:
    """Load a journal, tolerating a truncated (killed-mid-write) tail.

    Only the *final* line may be unparseable -- that is the valid-prefix
    guarantee. Corruption anywhere earlier raises ``ValueError``.
    """
    path = pathlib.Path(path)
    records: list[dict] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            if lineno == len(lines):
                break
            raise ValueError(f"{path}: blank line {lineno} in journal")
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # killed mid-write: drop the partial tail line
            raise ValueError(f"{path}: corrupt journal line {lineno}")
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(
                f"{path}: line {lineno} is not an object with a 'type'"
            )
        records.append(record)
    return records


def last_snapshot(records: list[dict]) -> Snapshot | None:
    """The most recent complete snapshot in a journal, if any."""
    for record in reversed(records):
        if record.get("type") == "snapshot":
            return Snapshot.from_dict(record)
    return None
