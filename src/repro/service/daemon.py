"""The continuous bwauth daemon (ROADMAP item 1, paper §4.3 / §5).

:class:`BwauthDaemon` is the asyncio scheduler loop that turns the
one-shot campaign stack into a *service*: it ticks measurement periods
on a :mod:`clock <repro.service.clock>` (simulated or wall), and for
each period

1. computes the §4.3 secret schedule (:class:`~repro.core.schedule.\
   PeriodSchedule`) from the previous periods' estimates,
2. derives and applies the period's deterministic churn
   (:mod:`repro.service.churn`) to the durable
   :class:`~repro.service.state.NetworkTable` *and* the schedule
   (joins FCFS, leaves released),
3. materializes a fresh network from the table, builds a one-period
   :class:`~repro.api.scenario.Scenario` against it (priors from the
   :class:`~repro.core.deployment.Deployment` history), and runs the
   :class:`~repro.api.Campaign` off the event loop in an executor,
4. folds the result into the deployment (prior carryover + aging) and
   publishes a v3bw bandwidth file on the configured cadence,
5. journals everything (:mod:`repro.service.journal`) and snapshots
   the full durable state at the period boundary.

Determinism: the service layer reads clocks, never RNGs. Every stream
-- per-period campaign seeds, schedule seeds, churn events -- re-derives
from ``(service seed, period index)`` labels, and each period's relays
are materialized fresh from plain rows, so period ``k`` is a pure
function of ``(config, table, history, k)``. That is why a daemon
killed at (or within) a period and resumed from its journal produces
bit-identical remaining bandwidth files, and why running with or
without a journal changes nothing but the file on disk.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import pathlib
import time
from contextlib import contextmanager
from dataclasses import replace

from repro.api.campaign import Campaign
from repro.api.events import CampaignObserver, RoundCompleted
from repro.core.bwfile import BandwidthFile
from repro.core.deployment import Deployment
from repro.core.schedule import PeriodSchedule
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, get_tracer
from repro.rng import seed_from
from repro.service.churn import apply_to_schedule, churn_events_for_period
from repro.service.clock import make_clock
from repro.service.journal import (
    ServiceJournal,
    last_snapshot,
    read_journal,
    service_manifest,
)
from repro.service.state import NetworkTable, ServiceConfig, Snapshot

__all__ = ["BwauthDaemon", "run_daemon", "status"]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def estimates_digest(estimates: dict[str, float]) -> str:
    """A canonical content hash of one period's estimates.

    ``repr`` of the float is the shortest round-tripping form, so two
    runs digest equal iff their estimates are bit-identical.
    """
    lines = "\n".join(f"{fp} {estimate!r}" for fp, estimate in sorted(estimates.items()))
    return _digest(lines)


class _RoundJournalObserver(CampaignObserver):
    """Streams each campaign round's aggregate outcome into the journal."""

    def __init__(self, daemon: "BwauthDaemon", period_index: int):
        self._daemon = daemon
        self._period = period_index

    def on_round_completed(self, event: RoundCompleted) -> None:
        record = event.record
        self._daemon._journal(
            {
                "type": "round",
                "period": self._period,
                "round": record.round_index,
                "first_slot": record.first_slot,
                "slots_packed": record.slots_packed,
                "measurements": len(record.measurements),
                "accepted": record.n_accepted,
                "retried": record.n_retried,
                "failed": record.n_failed,
                "wall_seconds": record.wall_seconds,
            }
        )


class BwauthDaemon:
    """A continuously operating bandwidth authority.

    Build one from a :class:`~repro.service.state.ServiceConfig` (fresh
    deployment) or :meth:`resume` (from a journal's last snapshot), then
    ``await run_async()`` -- or use :func:`run_daemon` from sync code.
    """

    def __init__(
        self,
        config: ServiceConfig,
        journal_path=None,
        clock=None,
        snapshot: Snapshot | None = None,
    ):
        self.config = config
        self.base = config.base_scenario()
        self.seed = config.effective_seed
        self.clock = clock if clock is not None else make_clock(config.clock)
        self.registry = MetricsRegistry()

        if snapshot is None:
            self.table = NetworkTable.from_network(
                self.base.network.build(self.seed)
            )
            self.deployment = Deployment(
                authority=self.base.team.build(self.base.params, self.seed),
                full_simulation=config.execution.full_simulation,
            )
            self.next_period = 0
            self.published_count = 0
        else:
            self.table = snapshot.table
            self.deployment = Deployment.restore(
                authority=self.base.team.build(self.base.params, self.seed),
                history=snapshot.history,
                completed_periods=snapshot.next_period,
                full_simulation=config.execution.full_simulation,
            )
            self.next_period = snapshot.next_period
            self.published_count = snapshot.published

        #: ``(period_index, serialized bandwidth file)`` per publication
        #: this daemon lifetime -- what the bit-identity tests compare.
        self.published: list[tuple[int, str]] = []
        #: Per-period error/failure stats this daemon lifetime.
        self.period_stats: list[dict] = []
        #: The most recent boundary snapshot (also journaled inline).
        self.snapshot: Snapshot | None = snapshot

        self._journal_writer: ServiceJournal | None = None
        if journal_path is not None:
            if snapshot is None:
                self._journal_writer = ServiceJournal(
                    journal_path, manifest=service_manifest(config)
                )
            else:
                self._journal_writer = ServiceJournal(journal_path, resume=True)
                self._journal(
                    {"type": "resumed", "next_period": self.next_period}
                )

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    def _journal(self, record: dict) -> None:
        if self._journal_writer is not None:
            self._journal_writer.append(record)

    @contextmanager
    def _span(self, name: str, period_index: int, **attrs):
        """Ambient tracer span + a ``span`` journal record on exit."""
        wall0, cpu0 = time.perf_counter(), time.process_time()
        with get_tracer().span(name, period_index=period_index, **attrs):
            yield
        self._journal(
            {
                "type": "span",
                "name": name,
                "period": period_index,
                "wall_seconds": time.perf_counter() - wall0,
                "cpu_seconds": time.process_time() - cpu0,
                **attrs,
            }
        )

    def close(self) -> None:
        if self._journal_writer is not None:
            self._journal_writer.close()

    # ------------------------------------------------------------------
    # Resume / inspection
    # ------------------------------------------------------------------

    @classmethod
    def resume(cls, journal_path, clock=None) -> "BwauthDaemon":
        """Rebuild a killed daemon from its journal's last snapshot.

        A journal truncated mid-period resumes from the last *completed*
        period boundary and re-runs the interrupted period; because each
        period is a pure function of the snapshotted state, the re-run
        (and all remaining periods) are bit-identical to an
        uninterrupted deployment.
        """
        records = read_journal(journal_path)
        snapshot = last_snapshot(records)
        if snapshot is None:
            raise ConfigurationError(
                f"{journal_path}: no complete snapshot to resume from "
                "(the daemon died before its first period boundary); "
                "start a fresh run instead"
            )
        if snapshot.config is None:
            raise ConfigurationError(
                f"{journal_path}: snapshot carries no config"
            )
        return cls(
            snapshot.config,
            journal_path=journal_path,
            clock=clock,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------------
    # The period loop
    # ------------------------------------------------------------------

    async def run_async(self, until_period: int | None = None) -> "BwauthDaemon":
        """Run periods until the deployment (or ``until_period``) ends.

        ``until_period`` stops *before* running that period index -- the
        clean kill-at-a-period-boundary used by the CI smoke job; resume
        later with :meth:`resume`.
        """
        target = self.config.periods
        if until_period is not None:
            target = min(target, until_period)
        loop = asyncio.get_running_loop()
        start = self.clock.now()
        first = self.next_period
        while self.next_period < target:
            k = self.next_period
            deadline = start + (k - first) * self.config.period_seconds
            delay = deadline - self.clock.now()
            if delay > 0:
                await self.clock.sleep(delay)
            await self._run_period(loop, k)
            self.next_period = k + 1
            self._checkpoint()
        self._journal(
            {
                "type": "end",
                "next_period": self.next_period,
                "complete": self.next_period >= self.config.periods,
            }
        )
        return self

    def run(self, until_period: int | None = None) -> "BwauthDaemon":
        """Sync wrapper: drive :meth:`run_async` on a fresh event loop."""
        return asyncio.run(self.run_async(until_period=until_period))

    async def _run_period(self, loop, k: int) -> None:
        period_seed = seed_from(self.seed, f"period-{k}")
        self._journal(
            {
                "type": "period_started",
                "period": k,
                "n_relays": len(self.table),
                "seed": period_seed,
            }
        )
        with self._span("service.period", k):
            schedule = self._build_schedule(k)
            if k > 0 and self.config.churn is not None:
                self._apply_churn(k, schedule)

            network = self.table.materialize()
            priors = self.deployment.priors_for(network)
            authority = self.base.team.build(self.base.params, period_seed)
            scenario = replace(
                self.base,
                network=network,
                team=authority,
                params=None,
                priors=priors,
                periods=1,
                seed=period_seed,
            )
            campaign = Campaign(scenario, self.config.execution)
            observers = (
                (_RoundJournalObserver(self, k),)
                if self._journal_writer is not None
                else ()
            )
            report = await loop.run_in_executor(
                None, functools.partial(campaign.run, observers)
            )

            # Fold into the deployment (the period's authority owns the
            # bwfile's generator identity; quick_team names it bwauth0
            # for every period, so published files stay uniform).
            self.deployment.authority = authority
            record = self.deployment.record_period(report.result)
            assert record.period_index == k

            if (k + 1) % self.config.publish_every == 0:
                self._publish(k, record.bwfile)

            stats = {
                "period": k,
                "n_relays": len(network),
                "n_priors": len(priors),
                "n_estimated": len(report.estimates),
                "n_failed": len(report.failures),
                "rounds": len(report.rounds),
                "measurements": report.measurements_run,
                "median_error_vs_truth": report.median_error_vs_truth(),
                "schedule_slots_in_use": schedule.slots_in_use(),
                "estimates_sha256": estimates_digest(report.estimates),
            }
            self.period_stats.append(stats)
            self._journal({"type": "period_completed", **stats})

            self.registry.counter("service.periods").inc()
            self.registry.counter("service.rounds").inc(len(report.rounds))
            self.registry.counter("service.measurements").inc(
                report.measurements_run
            )
            self.registry.gauge("service.relays").set(len(network))

    def _build_schedule(self, k: int) -> PeriodSchedule:
        """The period's secret schedule from the BWAuth's shared seed.

        Old relays (fresh priors) get random feasible slots; members
        never measured before are slotted FCFS at the §4.3 new-relay
        seed estimate. The campaign's own packing loop re-derives the
        measurement order internally; this artifact is the *published
        plan* churn is folded into, and it is journaled per period.
        """
        params = self.deployment.authority.params
        team_capacity = self.deployment.authority.team_capacity()
        known = self.deployment.known_estimates()
        members = self.table.fingerprints()
        estimates = {fp: known[fp] for fp in members if fp in known}
        schedule = PeriodSchedule.build(
            params,
            team_capacity,
            estimates,
            seed=seed_from(self.seed, f"schedule-{k}").to_bytes(8, "big"),
        )
        for fp in sorted(fp for fp in members if fp not in estimates):
            schedule.add_new_relay(fp, params.new_relay_seed)
        return schedule

    def _apply_churn(self, k: int, schedule: PeriodSchedule) -> None:
        config = self.config.churn
        events = churn_events_for_period(config, k, self.table.fingerprints())
        with self._span("service.churn.applied", k, n_events=len(events)):
            schedule_counts = apply_to_schedule(
                schedule,
                events,
                self.deployment.authority.params.new_relay_seed,
            )
            table_counts = self.table.apply_churn(events)
        self._journal(
            {
                "type": "churn",
                "period": k,
                "events": [event.to_dict() for event in events],
                "table": table_counts,
                "schedule": schedule_counts,
                "n_relays": len(self.table),
            }
        )
        self.registry.counter("service.churn.applied").inc(len(events))
        for key in ("joins", "leaves", "capacity_changes"):
            self.registry.counter(f"service.churn.{key}").inc(
                table_counts[key]
            )
        self.registry.counter("service.churn.unslotted").inc(
            schedule_counts["unslotted"]
        )

    def _publish(self, k: int, bwfile: BandwidthFile) -> None:
        with self._span("service.publish", k):
            text = bwfile.serialize()
            # The hardened parser round-trips every file we publish;
            # this is the serialize->parse->serialize idempotence
            # guarantee applied at the production choke point.
            if BandwidthFile.parse(text).serialize() != text:
                raise ConfigurationError(
                    f"period {k}: bandwidth file does not round-trip"
                )
            path = None
            if self.config.out_dir is not None:
                out_dir = pathlib.Path(self.config.out_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                path = out_dir / f"v3bw-{k:05d}.txt"
                path.write_text(text, encoding="utf-8")
            self.published.append((k, text))
            self.published_count += 1
        self._journal(
            {
                "type": "published",
                "period": k,
                "path": str(path) if path is not None else None,
                "relays": len(bwfile),
                "sha256": _digest(text),
            }
        )
        self.registry.counter("service.publish.files").inc()

    def _checkpoint(self) -> None:
        self.snapshot = Snapshot(
            next_period=self.next_period,
            table=NetworkTable(dict(self.table.rows)),
            history=self.deployment.history_snapshot(),
            published=self.published_count,
            config=self.config,
        )
        self._journal(
            {
                "type": "snapshot",
                **self.snapshot.to_dict(),
                "metrics": self.registry.snapshot(),
            }
        )


def run_daemon(
    config: ServiceConfig,
    journal_path=None,
    until_period: int | None = None,
    clock=None,
) -> BwauthDaemon:
    """Build and run a daemon to completion (sync front door)."""
    daemon = BwauthDaemon(config, journal_path=journal_path, clock=clock)
    try:
        return daemon.run(until_period=until_period)
    finally:
        daemon.close()


def status(journal_path) -> dict:
    """Summarize a journal: where the deployment is and how it got there."""
    records = read_journal(journal_path)
    manifest = next((r for r in records if r.get("type") == "manifest"), None)
    snapshot = last_snapshot(records)
    completed = [r for r in records if r.get("type") == "period_completed"]
    published = [r for r in records if r.get("type") == "published"]
    churn = [r for r in records if r.get("type") == "churn"]
    config = (manifest or {}).get("config", {})
    periods_configured = config.get("periods")
    next_period = snapshot.next_period if snapshot is not None else 0
    return {
        "schema": (manifest or {}).get("schema"),
        "scenario": config.get("scenario"),
        "periods_configured": periods_configured,
        "next_period": next_period,
        "periods_completed": len(completed),
        "published": len(published),
        "churn_events": sum(len(r.get("events", [])) for r in churn),
        "relays": len(snapshot.table) if snapshot is not None else None,
        "resumes": sum(1 for r in records if r.get("type") == "resumed"),
        "complete": (
            periods_configured is not None
            and next_period >= periods_configured
        ),
        "records": len(records),
    }
