"""Durable daemon state: config, the network table, and snapshots.

The daemon's whole world state is deliberately *data*, never live
objects:

- :class:`ServiceConfig` names a registry scenario plus literal
  overrides (instead of holding a ``Scenario``), so the exact workload
  re-derives on resume from the journal manifest alone;
- :class:`NetworkTable` is the membership table -- one
  :class:`RelayRow` of ``(fingerprint, capacity, seed, nickname,
  flags, jitter)`` per relay -- from which each period's
  :class:`~repro.tornet.network.TorNetwork` is materialized afresh
  (:meth:`NetworkTable.materialize`). Churn mutates the table between
  periods; relays reboot at period boundaries (fresh jitter streams and
  token buckets), which is what makes a resumed daemon bit-identical to
  an uninterrupted one: period ``k``'s campaign is a pure function of
  ``(config, table state, prior history, k)``;
- :class:`Snapshot` bundles the table, the
  :class:`~repro.core.deployment.Deployment` prior history, and the
  period cursor -- everything :meth:`BwauthDaemon.resume
  <repro.service.daemon.BwauthDaemon>` needs. Snapshots are written
  inline into the journal at every period boundary.

No RNG lives in any of these objects: every stream the service layer
uses is re-derived from ``(seed, period index)`` labels, so there are
no generator positions to checkpoint.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.api.execution import ExecutionConfig
from repro.api.scenario import NetworkSpec, Scenario
from repro.errors import ConfigurationError
from repro.service.churn import ChurnConfig, ChurnEvent
from repro.tornet.network import _MIN_CAPACITY, TorNetwork
from repro.tornet.relay import Relay
from repro.units import DAY

__all__ = ["NetworkTable", "RelayRow", "ServiceConfig", "Snapshot"]

#: Snapshot / journal schema tag (bump on breaking changes, like
#: ``flashflow-trace/1``).
SERVICE_SCHEMA = "flashflow-service/1"


@dataclass(frozen=True)
class RelayRow:
    """Everything needed to materialize one relay, as plain data."""

    fingerprint: str
    capacity: float
    seed: int
    nickname: str = ""
    flags: tuple[str, ...] = ("Fast", "Running", "Valid")
    jitter: float = 0.02

    def to_list(self) -> list:
        return [
            self.fingerprint, self.capacity, self.seed, self.nickname,
            list(self.flags), self.jitter,
        ]

    @classmethod
    def from_list(cls, row: list) -> "RelayRow":
        fingerprint, capacity, seed, nickname, flags, jitter = row
        return cls(
            fingerprint=fingerprint,
            capacity=float(capacity),
            seed=int(seed),
            nickname=nickname,
            flags=tuple(flags),
            jitter=float(jitter),
        )

    def materialize(self) -> Relay:
        return Relay.with_capacity(
            fingerprint=self.fingerprint,
            capacity_bits=self.capacity,
            nickname=self.nickname,
            flags=frozenset(self.flags),
            seed=self.seed,
            jitter=self.jitter,
        )


class NetworkTable:
    """The daemon's durable network membership (insertion-ordered)."""

    def __init__(self, rows: dict[str, RelayRow] | None = None):
        self.rows: dict[str, RelayRow] = dict(rows or {})

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.rows

    def fingerprints(self) -> list[str]:
        return list(self.rows)

    @classmethod
    def from_network(cls, network: TorNetwork) -> "NetworkTable":
        """Capture a (synthesized) network as plain rows.

        Works for any network whose relays were built via
        :meth:`Relay.with_capacity` (generated networks and their
        columnar views are): the CPU model's forward limit *is* the
        intrinsic capacity, so the row round-trips to a bit-identical
        relay.
        """
        rows = {}
        for fp, relay in network.relays.items():
            rows[fp] = RelayRow(
                fingerprint=fp,
                capacity=relay.cpu.max_forward_bits,
                seed=relay.seed,
                nickname=relay.nickname,
                flags=tuple(sorted(relay.flags)),
                jitter=relay.jitter,
            )
        return cls(rows)

    def materialize(self) -> TorNetwork:
        """Fresh, stateful relay objects for one measurement period."""
        network = TorNetwork()
        for row in self.rows.values():
            network.add(row.materialize())
        return network

    def apply_churn(self, events: list[ChurnEvent]) -> dict[str, int]:
        """Fold a period's churn events in; returns applied counts."""
        counts = {"joins": 0, "leaves": 0, "capacity_changes": 0}
        for event in events:
            if event.kind == "leave":
                if self.rows.pop(event.fingerprint, None) is not None:
                    counts["leaves"] += 1
            elif event.kind == "join":
                if event.fingerprint in self.rows:
                    raise ConfigurationError(
                        f"churn join collides with existing relay "
                        f"{event.fingerprint!r}"
                    )
                self.rows[event.fingerprint] = RelayRow(
                    fingerprint=event.fingerprint,
                    capacity=float(event.capacity),
                    seed=int(event.seed),
                    nickname=event.fingerprint,
                )
                counts["joins"] += 1
            elif event.kind == "capacity":
                row = self.rows.get(event.fingerprint)
                if row is not None:
                    self.rows[event.fingerprint] = replace(
                        row,
                        capacity=max(
                            _MIN_CAPACITY, row.capacity * float(event.capacity)
                        ),
                    )
                    counts["capacity_changes"] += 1
            else:
                raise ConfigurationError(
                    f"unknown churn event kind {event.kind!r}"
                )
        return counts

    def to_dict(self) -> dict:
        return {"rows": [row.to_list() for row in self.rows.values()]}

    @classmethod
    def from_dict(cls, record: dict) -> "NetworkTable":
        rows = [RelayRow.from_list(row) for row in record["rows"]]
        return cls({row.fingerprint: row for row in rows})


@dataclass(frozen=True)
class ServiceConfig:
    """A continuous deployment, described entirely by literals.

    The scenario is named (a :func:`repro.api.register_scenario` entry)
    rather than held, and overrides must be JSON-literal factory kwargs
    -- that is what makes the config journalable and a resumed daemon's
    workload exactly re-derivable. The named scenario must generate its
    network from a :class:`~repro.api.scenario.NetworkSpec` (the seed
    membership table is captured from it) and must not carry an
    adversary mix (per-period networks are explicit).
    """

    scenario: str = "continuous-deployment"
    overrides: dict = field(default_factory=dict)
    #: Total measurement periods the deployment runs.
    periods: int = 5
    #: Wall pacing between period starts (the paper operates 24-hour
    #: periods); a simulated clock crosses it instantly.
    period_seconds: float = float(DAY)
    #: Publish a bandwidth file every N periods.
    publish_every: int = 1
    #: Directory bandwidth files are written to (None = keep in memory).
    out_dir: str | None = None
    churn: ChurnConfig | None = field(default_factory=ChurnConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: ``simulated`` or ``wall``.
    clock: str = "simulated"
    #: Master service seed; None = the base scenario's seed.
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.periods < 1:
            raise ConfigurationError("periods must be >= 1")
        if self.publish_every < 1:
            raise ConfigurationError("publish_every must be >= 1")
        if self.period_seconds <= 0:
            raise ConfigurationError("period_seconds must be positive")
        if self.clock not in ("simulated", "wall"):
            raise ConfigurationError("clock must be 'simulated' or 'wall'")

    def base_scenario(self) -> Scenario:
        from repro.api.scenarios import get_scenario

        scenario = get_scenario(self.scenario, **self.overrides)
        if not isinstance(scenario.network, NetworkSpec):
            raise ConfigurationError(
                "the service needs a generated network (NetworkSpec) so "
                "the membership table can be captured and resumed"
            )
        if scenario.adversaries is not None:
            raise ConfigurationError(
                "adversary mixes are not supported by the service daemon "
                "(per-period networks are explicit)"
            )
        return scenario

    @property
    def effective_seed(self) -> int:
        return self.seed if self.seed is not None else self.base_scenario().seed

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "overrides": dict(self.overrides),
            "periods": self.periods,
            "period_seconds": self.period_seconds,
            "publish_every": self.publish_every,
            "out_dir": self.out_dir,
            "churn": self.churn.to_dict() if self.churn else None,
            "execution": {
                k: (str(v) if k == "trace" and v is not None else v)
                for k, v in asdict(self.execution).items()
            },
            "clock": self.clock,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ServiceConfig":
        churn = record.get("churn")
        return cls(
            scenario=record["scenario"],
            overrides=dict(record.get("overrides", {})),
            periods=int(record["periods"]),
            period_seconds=float(record["period_seconds"]),
            publish_every=int(record.get("publish_every", 1)),
            out_dir=record.get("out_dir"),
            churn=ChurnConfig.from_dict(churn) if churn else None,
            execution=ExecutionConfig(**record.get("execution", {})),
            clock=record.get("clock", "simulated"),
            seed=record.get("seed"),
        )


@dataclass
class Snapshot:
    """The daemon's complete durable state at a period boundary.

    ``next_period`` is the first period a resumed daemon must run;
    ``history`` is :meth:`Deployment.history_snapshot
    <repro.core.deployment.Deployment.history_snapshot>`; ``table`` is
    the membership entering ``next_period`` (pre-churn -- churn for
    period ``k`` is re-derived and applied when ``k`` runs).
    """

    next_period: int
    table: NetworkTable
    history: dict[str, tuple[float, int]] = field(default_factory=dict)
    published: int = 0
    config: ServiceConfig | None = None

    def to_dict(self) -> dict:
        return {
            "schema": SERVICE_SCHEMA,
            "next_period": self.next_period,
            "published": self.published,
            "history": {
                fp: [estimate, period]
                for fp, (estimate, period) in sorted(self.history.items())
            },
            "table": self.table.to_dict(),
            "config": self.config.to_dict() if self.config else None,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Snapshot":
        if record.get("schema") != SERVICE_SCHEMA:
            raise ConfigurationError(
                f"snapshot schema {record.get('schema')!r} is not "
                f"{SERVICE_SCHEMA!r}"
            )
        config = record.get("config")
        return cls(
            next_period=int(record["next_period"]),
            published=int(record.get("published", 0)),
            history={
                fp: (float(estimate), int(period))
                for fp, (estimate, period) in record.get("history", {}).items()
            },
            table=NetworkTable.from_dict(record["table"]),
            config=ServiceConfig.from_dict(config) if config else None,
        )
