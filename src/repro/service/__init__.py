"""``repro.service`` -- the continuous bwauth daemon (ROADMAP item 1).

FlashFlow is deployed as a long-running measurement *service*: a
coordinator that measures the whole Tor network every period, forever,
publishing v3bw weight files as relays join and leave. This package is
that service shape for the reproduction:

- :mod:`repro.service.daemon` -- the asyncio scheduler loop
  (:class:`BwauthDaemon`): ticks periods on a simulated or wall clock,
  runs each period's :class:`repro.api.Campaign` off the event loop in
  an executor, ages priors through
  :class:`repro.core.deployment.Deployment`, and publishes bandwidth
  files on a schedule;
- :mod:`repro.service.churn` -- deterministic seeded relay
  join/leave/capacity-change event streams, applied between periods to
  the daemon's network table and to the period's secret
  :class:`repro.core.schedule.PeriodSchedule` (joins FCFS via
  ``add_new_relay``, leaves via ``remove_relay``);
- :mod:`repro.service.state` -- the daemon's durable state
  (:class:`ServiceConfig`, :class:`NetworkTable`, :class:`Snapshot`):
  everything a killed daemon needs to resume producing **bit-identical**
  remaining periods;
- :mod:`repro.service.journal` -- the append-only
  ``flashflow-service/1`` JSONL event log (manifest, period/churn/
  round/publication records, inline snapshots at period boundaries;
  every line flushed, so a killed daemon leaves a valid prefix);
- :mod:`repro.service.validate` -- the journal schema checker behind
  ``python -m repro.service.validate`` (CI ``service-smoke``).

Run it with ``python -m repro.service run|resume|status``.
"""

from repro.service.churn import ChurnConfig, ChurnEvent, churn_events_for_period
from repro.service.clock import SimulatedClock, WallClock
from repro.service.daemon import BwauthDaemon, run_daemon
from repro.service.journal import ServiceJournal, read_journal
from repro.service.state import (
    NetworkTable,
    RelayRow,
    ServiceConfig,
    Snapshot,
)

__all__ = [
    "BwauthDaemon",
    "ChurnConfig",
    "ChurnEvent",
    "NetworkTable",
    "RelayRow",
    "ServiceConfig",
    "ServiceJournal",
    "SimulatedClock",
    "Snapshot",
    "WallClock",
    "churn_events_for_period",
    "read_journal",
    "run_daemon",
]
