"""The unified, scenario-driven campaign API -- FlashFlow's front door.

Every FlashFlow workload is described and run the same way::

    from repro.api import Campaign, ExecutionConfig, Scenario

    report = Campaign(
        Scenario(),                       # what to measure
        ExecutionConfig(backend="vector"),  # how to run it
    ).run()
    print(report.median_error_vs_truth())

or, for the canned paper scenarios::

    from repro.api import run_scenario
    report = run_scenario("fig06-accuracy", n_relays=6)

Layering (see ROADMAP.md): ``Scenario`` (network / team / adversaries /
background / priors / params) and ``ExecutionConfig`` (backend /
workers / simulation depth) feed a ``Campaign``, which streams
per-round events to observers and drives
:class:`repro.core.engine.MeasurementEngine` and the vectorized
:mod:`repro.kernel` beneath it. The legacy entry points
(:func:`repro.core.netmeasure.measure_network`,
:meth:`repro.core.deployment.Deployment.run_period`,
:func:`repro.shadow.experiment.flashflow_weights_for`) are thin shims
over this package and produce bit-identical results.
"""

from repro.api.campaign import Campaign, run_period_rounds
from repro.api.events import (
    CampaignCompleted,
    CampaignEvent,
    CampaignObserver,
    CampaignStarted,
    MetricsObserver,
    PeriodCompleted,
    PeriodStarted,
    ProgressObserver,
    RoundCompleted,
    RoundPlanned,
    TimingObserver,
)
from repro.api.execution import ExecutionConfig
from repro.api.report import CampaignReport, MeasurementRecord, RoundRecord
from repro.api.scenario import (
    AdversaryMix,
    AdversarySpec,
    NetworkSpec,
    ResolvedScenario,
    Scenario,
    TeamSpec,
    UtilizationBackground,
)
from repro.api.scenarios import (
    default_execution_for,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
    scenario_registry,
)

__all__ = [
    "AdversaryMix",
    "AdversarySpec",
    "Campaign",
    "CampaignCompleted",
    "CampaignEvent",
    "CampaignObserver",
    "CampaignReport",
    "CampaignStarted",
    "ExecutionConfig",
    "MeasurementRecord",
    "MetricsObserver",
    "NetworkSpec",
    "PeriodCompleted",
    "PeriodStarted",
    "ProgressObserver",
    "ResolvedScenario",
    "RoundCompleted",
    "RoundPlanned",
    "RoundRecord",
    "Scenario",
    "TeamSpec",
    "TimingObserver",
    "UtilizationBackground",
    "compare_load_balancing",
    "default_execution_for",
    "get_scenario",
    "register_scenario",
    "run_period_rounds",
    "run_scenario",
    "scenario_names",
    "scenario_registry",
]


def compare_load_balancing(
    config=None,
    loads=(1.0, 1.15, 1.30),
    seed: int = 0,
    run_performance: bool = True,
    execution: ExecutionConfig | None = None,
):
    """The §7 TorFlow-vs-FlashFlow pipeline through the API front door.

    Thin wrapper over :func:`repro.shadow.experiment.compare_systems`
    (whose measurement phase already runs through a
    :class:`Campaign`); ``execution`` selects the kernel backend and
    worker count for the FlashFlow measurement phase plus the shadow
    flow-simulator backend (``execution.shadow_backend``) for the
    TorFlow warmups and performance runs. Returns the
    :class:`repro.shadow.experiment.ExperimentResult`.
    """
    from repro.shadow.experiment import compare_systems

    execution = execution or ExecutionConfig()
    return compare_systems(
        config=config,
        loads=tuple(loads),
        seed=seed,
        run_performance=run_performance,
        measurement_backend=execution.backend,
        measurement_workers=execution.max_workers,
        shadow_backend=execution.shadow_backend,
    )
