"""How a campaign is executed, separated from what it measures.

:class:`ExecutionConfig` collects every knob that affects *how* a
campaign runs -- kernel backend, worker count, full vs analytic
simulation, retry budget -- and none that affect *what* is measured
(that is :class:`repro.api.scenario.Scenario`). The same scenario run
under any execution config produces bit-identical estimates; execution
only selects scheduling and the level of per-second detail.

This replaces the loose kwarg tail ``measure_network(...,
full_simulation=, max_rounds=, analytic_error_std=, max_workers=,
backend=)`` with one validated, frozen object that threads cleanly down
to :class:`repro.core.engine.MeasurementEngine` and
:mod:`repro.kernel`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Backend names the kernel registry ships with; ``None`` defers to
#: ``FlashFlowParams.kernel_backend`` / ``FLASHFLOW_KERNEL_BACKEND`` /
#: ``auto``. Third-party backends registered via
#: :func:`repro.kernel.register_backend` are also accepted.
KNOWN_BACKENDS = ("serial", "thread", "process", "vector", "analytic", "auto")


@dataclass(frozen=True)
class ExecutionConfig:
    """Execution policy for one campaign run.

    Every field is semantics-preserving: estimates are bit-identical
    for any ``backend``/``max_workers`` choice, and ``full_simulation``
    switches between the per-second traffic walk and the engine's
    analytic accept/retry model (used by scheduling-efficiency studies
    where only slot accounting matters).
    """

    #: Kernel execution backend (:mod:`repro.kernel.backends`). ``None``
    #: defers to params/environment, then ``auto``.
    backend: str | None = None
    #: Shadow flow-simulator backend (:mod:`repro.shadow.flows`) for
    #: workloads that run the flow-level simulator (the §7 comparison
    #: pipeline; see ``repro.shadow.experiment.compare_systems``).
    #: Bit-identical by construction; measurement-only campaigns carry
    #: but never consult it. ``None`` defers to the
    #: ``FLASHFLOW_SHADOW_BACKEND`` environment variable, then ``auto``.
    shadow_backend: str | None = None
    #: Engine worker-count cap (``None`` = engine default, ``1`` = serial).
    max_workers: int | None = None
    #: Per-second traffic simulation (True) vs the analytic fast path.
    full_simulation: bool = True
    #: Maximum measurement attempts per relay before "did not converge".
    #: A still-inconclusive relay is measured exactly ``max_rounds``
    #: times (attempts, not retries) before being declared failed.
    max_rounds: int = 8
    #: Std-dev of the analytic path's pre-drawn measurement-error factor.
    analytic_error_std: float = 0.02
    #: Pipelined rounds: overlap each round's stateful compile stream
    #: with worker execution (:func:`repro.kernel.run_specs`). ``None``
    #: (auto, the default) enables it wherever the backend has a pool to
    #: overlap with (``thread``/``process``) and stays off under
    #: ``serial``/``vector`` -- so ``serial`` keeps its one-at-a-time
    #: debugging granularity. ``True`` forces the request (still a
    #: no-op on pool-less backends), ``False`` disables it. Events,
    #: estimates, and reports are bit-identical either way.
    pipeline: bool | None = None
    #: Campaign sharding: partition each round's packed slots into this
    #: many contiguous, balanced parts and hand the partition to the
    #: backend as its chunk boundaries (one shard per worker task on
    #: pool backends; in-process backends walk the shards in order).
    #: Results merge back in slot order, so events, estimates, and
    #: reports are bit-identical to an unsharded run. ``None`` (the
    #: default) leaves chunking to the backend; sharding prescribes the
    #: chunk boundaries, so ``pipeline`` is ignored when set.
    shards: int | None = None
    #: Path for a ``flashflow-trace/1`` JSONL trace of the run
    #: (:mod:`repro.obs`): manifest line, hierarchical campaign/round/
    #: kernel spans with wall+CPU time, and a metrics snapshot, written
    #: incrementally. ``None`` (the default) keeps the ambient tracer
    #: (normally the no-op null tracer -- the zero-overhead path).
    #: Tracing is semantics-preserving: spans read clocks, never RNGs,
    #: so a traced run's events and estimates are bit-identical to an
    #: untraced one.
    trace: str | None = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            if not isinstance(self.backend, str) or not self.backend:
                raise ConfigurationError(
                    "backend must be a kernel backend name or None"
                )
            from repro.kernel import backend_names

            known = set(KNOWN_BACKENDS) | set(backend_names())
            if self.backend not in known:
                raise ConfigurationError(
                    f"unknown kernel backend {self.backend!r}; "
                    f"known: {sorted(known)}"
                )
        if self.shadow_backend is not None:
            if not isinstance(self.shadow_backend, str) or not self.shadow_backend:
                raise ConfigurationError(
                    "shadow_backend must be a shadow backend name or None"
                )
            from repro.shadow.flows import shadow_backend_names

            known = {"auto"} | set(shadow_backend_names())
            if self.shadow_backend not in known:
                raise ConfigurationError(
                    f"unknown shadow backend {self.shadow_backend!r}; "
                    f"known: {sorted(known)}"
                )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 or None")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.analytic_error_std < 0:
            raise ConfigurationError("analytic_error_std must be >= 0")
        if self.pipeline is not None and not isinstance(self.pipeline, bool):
            raise ConfigurationError(
                "pipeline must be True, False, or None (auto)"
            )
        if self.shards is not None:
            if isinstance(self.shards, bool) or not isinstance(self.shards, int):
                raise ConfigurationError("shards must be an integer or None")
            if self.shards < 1:
                raise ConfigurationError("shards must be >= 1 or None")
        if self.trace is not None and not isinstance(
            self.trace, (str, os.PathLike)
        ):
            raise ConfigurationError(
                "trace must be a path for the JSONL trace file or None"
            )

    def with_backend(self, backend: str | None) -> "ExecutionConfig":
        """A copy of this config on a different kernel backend."""
        return replace(self, backend=backend)

    def with_shadow_backend(self, shadow_backend: str | None) -> "ExecutionConfig":
        """A copy of this config on a different shadow flow backend."""
        return replace(self, shadow_backend=shadow_backend)
