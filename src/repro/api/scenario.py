"""Declarative descriptions of FlashFlow workloads.

A :class:`Scenario` is a frozen, validated description of *what* to
measure: the network (an explicit :class:`~repro.tornet.network.\
TorNetwork` or a generated one), the measurement team, an adversary mix
(fractions of :class:`~repro.tornet.relay.RelayBehavior` subclasses), a
background-traffic model (constant / per-fingerprint / callable -- the
three forms :func:`repro.core.netmeasure.normalize_background_demand`
unifies), prior estimates, protocol parameters, and the environment
noise model. Scenarios carry no execution policy -- that is
:class:`repro.api.execution.ExecutionConfig` -- and are the single
front door every campaign, example, bench, and test describes its
workload through.

Describing a scenario draws no randomness; :meth:`Scenario.resolve`
materializes it deterministically from the scenario seed. Resolving
twice yields equal-but-distinct relay objects (relays are stateful), so
each :class:`repro.api.campaign.Campaign` run resolves afresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro import quick_team
from repro.core.bwauth import FlashFlowAuthority
from repro.core.engine import MeasurementNoise
from repro.core.netmeasure import normalize_background_demand
from repro.core.params import FlashFlowParams
from repro.errors import ConfigurationError
from repro.rng import fork, seed_from
from repro.tornet.network import TorNetwork, synthesize_network
from repro.tornet.relay import RelayBehavior
from repro.units import gbit

#: The two symbolic prior policies; an explicit dict is also accepted.
PRIOR_POLICIES = ("none", "truth")


@dataclass(frozen=True)
class NetworkSpec:
    """A generated network: size, capacity distribution, seed.

    Fields left ``None`` use :func:`repro.tornet.network.\
synthesize_network`'s July-2019 calibration defaults.
    """

    n_relays: int = 200
    seed: int | None = None
    median: float | None = None
    sigma: float | None = None
    max_capacity: float | None = None
    prefix: str = "relay"
    #: Materialize relay state as fingerprint-indexed column arrays
    #: (:mod:`repro.tornet.columnar`) with relays as lazy views -- the
    #: default, and required for Tor-scale (10^5+) networks. ``False``
    #: builds eager per-relay objects; both are bit-identical.
    columnar: bool = True

    def __post_init__(self) -> None:
        if self.n_relays < 1:
            raise ConfigurationError("a network needs at least one relay")

    def build(self, default_seed: int) -> TorNetwork:
        kwargs = {
            "n_relays": self.n_relays,
            "seed": self.seed if self.seed is not None else default_seed,
            "prefix": self.prefix,
            "columnar": self.columnar,
        }
        for name in ("median", "sigma", "max_capacity"):
            value = getattr(self, name)
            if value is not None:
                kwargs[name] = value
        return synthesize_network(**kwargs)


@dataclass(frozen=True)
class TeamSpec:
    """A generated measurement team (the paper's 3 x 1 Gbit/s default)."""

    n_measurers: int = 3
    capacity_each: float = gbit(1.0)
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_measurers < 1:
            raise ConfigurationError("a team needs at least one measurer")
        if self.capacity_each <= 0:
            raise ConfigurationError("measurer capacity must be positive")

    def build(
        self, params: FlashFlowParams | None, default_seed: int
    ) -> FlashFlowAuthority:
        return quick_team(
            n_measurers=self.n_measurers,
            capacity_each=self.capacity_each,
            params=params,
            seed=self.seed if self.seed is not None else default_seed,
        )


def _behavior_factories() -> dict[str, Callable[[int], RelayBehavior]]:
    """Registered behaviours: ``name -> factory``.

    A value is either a plain ``seed -> RelayBehavior`` callable or a
    *factory class* (e.g. :class:`repro.attacks.CollusionFactory`) that
    is instantiated afresh per resolution -- stateful factories must
    not share state (collusion ledgers) between scenario resolutions.
    """
    from repro.attacks.collusion import CollusionFactory
    from repro.attacks.relays import (
        ForgingRelayBehavior,
        RatioCheatingRelayBehavior,
        SelectiveCapacityRelayBehavior,
        TrafficLiarRelayBehavior,
    )

    return {
        "traffic-liar": lambda seed: TrafficLiarRelayBehavior(),
        "ratio-cheater": lambda seed: RatioCheatingRelayBehavior(),
        "forger": lambda seed: ForgingRelayBehavior(seed=seed),
        "selective-capacity": lambda seed: SelectiveCapacityRelayBehavior(
            seed=seed
        ),
        "collusion": CollusionFactory,
    }


@dataclass(frozen=True)
class AdversarySpec:
    """One adversarial population: a behaviour and its relay fraction.

    ``behavior`` is a registered name (``traffic-liar``,
    ``ratio-cheater``, ``forger``, ``selective-capacity``) or a factory
    ``seed -> RelayBehavior`` for custom behaviours; the factory
    receives a deterministic per-relay seed.
    """

    behavior: str | Callable[[int], RelayBehavior]
    fraction: float

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ConfigurationError(
                "adversary fraction must be in (0, 1]"
            )
        if isinstance(self.behavior, str):
            if self.behavior not in _behavior_factories():
                raise ConfigurationError(
                    f"unknown adversary behaviour {self.behavior!r}; "
                    f"known: {sorted(_behavior_factories())}"
                )
        elif not callable(self.behavior):
            raise ConfigurationError(
                "behavior must be a registered name or a seed -> "
                "RelayBehavior factory"
            )

    @property
    def name(self) -> str:
        if isinstance(self.behavior, str):
            return self.behavior
        return getattr(self.behavior, "__name__", "custom")

    def factory(self) -> Callable[[int], RelayBehavior]:
        """Resolve the entry into one live ``seed -> behaviour`` factory.

        Class-valued registry entries (stateful factories such as
        ``CollusionFactory``) are instantiated here, once per
        resolution; plain callables pass through unchanged.
        ``AdversaryMix.apply`` resolves each entry exactly once so all
        of an entry's behaviours come from the same factory instance.
        """
        resolved = (
            _behavior_factories()[self.behavior]
            if isinstance(self.behavior, str)
            else self.behavior
        )
        if isinstance(resolved, type):
            return resolved()
        return resolved

    def make(self, seed: int) -> RelayBehavior:
        """One-off behaviour construction (resolves a fresh factory)."""
        return self.factory()(seed)


@dataclass(frozen=True)
class AdversaryMix:
    """Fractions of the network handed to adversarial behaviours.

    Applied to *generated* networks only (mutating relays handed in by
    the caller would be a surprising side effect): relays are chosen
    deterministically from the scenario seed, disjointly across
    entries, in fingerprint order.
    """

    entries: tuple[AdversarySpec, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigurationError("an adversary mix needs entries")
        if sum(e.fraction for e in self.entries) > 1.0 + 1e-9:
            raise ConfigurationError(
                "adversary fractions must sum to at most 1"
            )

    def apply(self, network: TorNetwork, seed: int) -> dict[str, str]:
        """Assign behaviours in place; returns fingerprint -> name."""
        assigned: dict[str, str] = {}
        remaining = sorted(network.relays)
        for entry in self.entries:
            factory = entry.factory()
            rng = fork(seed, f"adversary-{entry.name}")
            count = min(
                len(remaining), round(entry.fraction * len(network))
            )
            picked = rng.sample(remaining, count) if count else []
            for fp in picked:
                network[fp].behavior = factory(
                    seed_from(seed, f"adversary-{entry.name}-{fp}")
                )
                assigned[fp] = entry.name
            finalize = getattr(factory, "finalize", None)
            if finalize is not None:
                finalize()
            remaining = [fp for fp in remaining if fp not in assigned]
        return assigned


@dataclass(frozen=True)
class UtilizationBackground:
    """Background client traffic as a fraction of relay capacity.

    Materialized into a per-fingerprint dict against the scenario's
    *resolved* network (deterministically from the scenario seed), so
    scenarios with capacity-proportional background can stay fully
    generated -- no eagerly built stateful network inside the frozen
    description. ``jitter_std`` draws one multiplicative
    ``max(0, gauss(1, std))`` factor per relay from ``fork(seed,
    rng_label)`` in network order; 0 consumes no randomness.
    """

    fraction: float
    jitter_std: float = 0.0
    rng_label: str = "background-utilization"

    def __post_init__(self) -> None:
        if self.fraction < 0:
            raise ConfigurationError("utilization fraction must be >= 0")
        if self.jitter_std < 0:
            raise ConfigurationError("jitter_std must be >= 0")

    def materialize(self, network: TorNetwork, seed: int) -> dict[str, float]:
        if self.jitter_std == 0:
            return {
                fp: relay.true_capacity * self.fraction
                for fp, relay in network.relays.items()
            }
        rng = fork(seed, self.rng_label)
        return {
            fp: relay.true_capacity
            * self.fraction
            * max(0.0, rng.gauss(1.0, self.jitter_std))
            for fp, relay in network.relays.items()
        }


@dataclass
class ResolvedScenario:
    """A scenario materialized into live objects, ready to run."""

    scenario: "Scenario"
    network: TorNetwork
    authority: FlashFlowAuthority
    params: FlashFlowParams
    priors: dict[str, float]
    background: float | dict[str, float] | Callable[[int], float]
    noise: MeasurementNoise | None
    #: Ground-truth capacity per relay (always known in simulation).
    ground_truth: dict[str, float] = field(default_factory=dict)
    #: fingerprint -> adversary behaviour name, for the relays the mix
    #: converted; empty for all-honest scenarios.
    adversaries: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Scenario:
    """A complete, validated description of one FlashFlow workload."""

    #: Display name (registry scenarios set this to their registered name).
    name: str = "custom"
    #: An explicit network, or a spec to generate one.
    network: TorNetwork | NetworkSpec = field(default_factory=NetworkSpec)
    #: An existing authority (its params rule), or a spec to build one.
    team: FlashFlowAuthority | TeamSpec = field(default_factory=TeamSpec)
    #: Protocol parameters for a generated team; must be None when
    #: ``team`` is an existing authority (the authority's params rule).
    params: FlashFlowParams | None = None
    #: ``None``/"none" = all relays new; "truth" = ground-truth priors;
    #: or an explicit fingerprint -> bit/s dict.
    priors: dict[str, float] | str | None = None
    #: Background client traffic: constant bit/s, per-fingerprint dict,
    #: a callable of the measurement second, or a
    #: :class:`UtilizationBackground` resolved against the network.
    background: (
        float
        | dict[str, float]
        | Callable[[int], float]
        | UtilizationBackground
    ) = 0.0
    #: Adversarial populations (generated networks only).
    adversaries: AdversaryMix | None = None
    #: Environment noise model (None = engine default).
    noise: MeasurementNoise | None = None
    #: Consecutive measurement periods (1 = a single campaign; more
    #: runs the multi-period deployment loop with prior carryover).
    periods: int = 1
    #: Master seed for everything the scenario generates.
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.periods < 1:
            raise ConfigurationError("periods must be >= 1")
        if not isinstance(self.network, (TorNetwork, NetworkSpec)):
            raise ConfigurationError(
                "network must be a TorNetwork or a NetworkSpec"
            )
        if not isinstance(self.team, (FlashFlowAuthority, TeamSpec)):
            raise ConfigurationError(
                "team must be a FlashFlowAuthority or a TeamSpec"
            )
        if (
            isinstance(self.team, FlashFlowAuthority)
            and self.params is not None
        ):
            raise ConfigurationError(
                "pass params via the authority when team is an existing "
                "FlashFlowAuthority"
            )
        if isinstance(self.priors, str) and self.priors not in PRIOR_POLICIES:
            raise ConfigurationError(
                f"priors must be a dict, None, or one of {PRIOR_POLICIES}"
            )
        if self.adversaries is not None and not isinstance(
            self.network, NetworkSpec
        ):
            raise ConfigurationError(
                "adversary mixes apply to generated networks only; "
                "set behaviours on explicit relays directly"
            )
        # Validates the background form early (constant/dict/callable);
        # UtilizationBackground validates itself and resolves later.
        if not isinstance(self.background, UtilizationBackground):
            normalize_background_demand(self.background)

    def with_overrides(self, **changes) -> "Scenario":
        """A copy with the given fields replaced (frozen-safe)."""
        return replace(self, **changes)

    def resolve(self) -> ResolvedScenario:
        """Materialize the scenario into live, stateful objects."""
        network = (
            self.network
            if isinstance(self.network, TorNetwork)
            else self.network.build(self.seed)
        )
        adversaries = (
            self.adversaries.apply(network, self.seed)
            if self.adversaries is not None
            else {}
        )
        authority = (
            self.team
            if isinstance(self.team, FlashFlowAuthority)
            else self.team.build(self.params, self.seed)
        )
        ground_truth = network.capacities()
        if self.priors is None or self.priors == "none":
            priors: dict[str, float] = {}
        elif self.priors == "truth":
            priors = dict(ground_truth)
        else:
            priors = dict(self.priors)
        background = (
            self.background.materialize(network, self.seed)
            if isinstance(self.background, UtilizationBackground)
            else self.background
        )
        return ResolvedScenario(
            scenario=self,
            network=network,
            authority=authority,
            params=authority.params,
            priors=priors,
            background=background,
            noise=self.noise,
            ground_truth=ground_truth,
            adversaries=adversaries,
        )
