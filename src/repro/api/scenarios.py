"""Canned paper scenarios and the ``@register_scenario`` registry.

Every named workload the examples, benches, CI smoke runs, and tests
invoke lives here: accuracy runs shaped like the paper's Figures 1/6,
the whole-network scheduling-efficiency sweep, background-traffic
campaigns (Figure 7), the §5 inflation-attack mix, and the §4.3
multi-period deployment. Each entry is a factory returning a
:class:`~repro.api.scenario.Scenario` (plus an optional default
:class:`~repro.api.execution.ExecutionConfig`), parameterized by
keyword overrides so callers can scale it up or down::

    from repro.api import run_scenario
    report = run_scenario("fig06-accuracy", n_relays=6)
    report = run_scenario("inflation-attack", adversary_fraction=0.5)

Adding a new scenario to the reproduction is now a one-function patch:

    @register_scenario("my-scenario", description="...")
    def my_scenario(**overrides) -> Scenario: ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.api.execution import ExecutionConfig
from repro.api.scenario import (
    AdversaryMix,
    AdversarySpec,
    NetworkSpec,
    Scenario,
    TeamSpec,
    UtilizationBackground,
)
from repro.core.engine import MeasurementNoise
from repro.errors import ConfigurationError
from repro.units import mbit


@dataclass(frozen=True)
class RegisteredScenario:
    """One registry entry: the factory plus its metadata."""

    name: str
    factory: Callable[..., Scenario]
    description: str = ""
    #: Execution config used when the caller passes none (e.g. the
    #: efficiency sweep defaults to the analytic fast path).
    default_execution: ExecutionConfig | None = None


_REGISTRY: dict[str, RegisteredScenario] = {}


def register_scenario(
    name: str,
    description: str = "",
    default_execution: ExecutionConfig | None = None,
):
    """Decorator registering ``factory(**overrides) -> Scenario``."""

    def deco(factory: Callable[..., Scenario]):
        if name in _REGISTRY:
            raise ConfigurationError(f"scenario {name!r} already registered")
        _REGISTRY[name] = RegisteredScenario(
            name=name,
            factory=factory,
            description=description,
            default_execution=default_execution,
        )
        return factory

    return deco


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def scenario_registry() -> dict[str, RegisteredScenario]:
    return dict(_REGISTRY)


def get_scenario(name: str, **overrides) -> Scenario:
    """Build a registered scenario, applying keyword overrides."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        )
    return _REGISTRY[name].factory(**overrides)


def default_execution_for(name: str) -> ExecutionConfig:
    entry = _REGISTRY.get(name)
    if entry is not None and entry.default_execution is not None:
        return entry.default_execution
    return ExecutionConfig()


def run_scenario(
    name: str,
    execution: ExecutionConfig | None = None,
    observers: Sequence = (),
    engine=None,
    **overrides,
):
    """Resolve and run a registered scenario; returns the report."""
    from repro.api.campaign import Campaign

    scenario = get_scenario(name, **overrides)
    if execution is None:
        execution = default_execution_for(name)
    return Campaign(scenario, execution, engine=engine).run(
        observers=observers
    )


# ---------------------------------------------------------------------------
# Canned paper scenarios
# ---------------------------------------------------------------------------

@register_scenario(
    "fig06-accuracy",
    description=(
        "Figure 1/6-style accuracy run: a small network with known "
        "ground truth, accurate priors, full per-second simulation; "
        "report.error_vs_truth() reproduces the paper's accuracy claim."
    ),
)
def _fig06_accuracy(
    n_relays: int = 12, seed: int = 6, periods: int = 1, **overrides
) -> Scenario:
    return Scenario(
        name="fig06-accuracy",
        network=NetworkSpec(n_relays=n_relays, median=mbit(120), sigma=0.9),
        team=TeamSpec(),
        priors="truth",
        periods=periods,
        seed=seed,
        description="accuracy vs ground truth under good priors",
        **overrides,
    )


@register_scenario(
    "whole-network-efficiency",
    description=(
        "The §7 scheduling-efficiency sweep: measure a July-2019-shaped "
        "network cold (no priors) and count slots; defaults to the "
        "analytic fast path where only slot accounting matters."
    ),
    default_execution=ExecutionConfig(full_simulation=False),
)
def _whole_network_efficiency(
    n_relays: int = 200, seed: int = 71, **overrides
) -> Scenario:
    return Scenario(
        name="whole-network-efficiency",
        network=NetworkSpec(n_relays=n_relays),
        team=TeamSpec(),
        priors=None,
        seed=seed,
        description="slot-count efficiency of the greedy scheduler",
        **overrides,
    )


@register_scenario(
    "background-traffic",
    description=(
        "Figure 7-style campaign with client traffic present at every "
        "relay during measurement (constant fraction of capacity, "
        "honest reporting, r-ratio clamp in effect)."
    ),
)
def _background_traffic(
    n_relays: int = 20,
    seed: int = 7,
    utilization: float = 0.30,
    **overrides,
) -> Scenario:
    return Scenario(
        name="background-traffic",
        network=NetworkSpec(n_relays=n_relays),
        team=TeamSpec(),
        priors="truth",
        background=UtilizationBackground(fraction=utilization),
        seed=seed,
        description="measurement under per-relay background client load",
        **overrides,
    )


@register_scenario(
    "inflation-attack",
    description=(
        "The §5 bandwidth-inflation mix: a fraction of relays run the "
        "ratio-cheating behaviour (no background traffic, full claimed "
        "allowance); report.adversary_inflation() stays under the "
        "1/(1-r) bound."
    ),
)
def _inflation_attack(
    n_relays: int = 24,
    seed: int = 9,
    adversary_fraction: float = 0.25,
    behavior: str = "ratio-cheater",
    **overrides,
) -> Scenario:
    return Scenario(
        name="inflation-attack",
        network=NetworkSpec(n_relays=n_relays, median=mbit(100), sigma=0.8),
        team=TeamSpec(),
        priors="truth",
        adversaries=AdversaryMix(
            entries=(
                AdversarySpec(behavior=behavior, fraction=adversary_fraction),
            )
        ),
        seed=seed,
        description="adversarial relays inflating toward 1/(1-r)",
        **overrides,
    )


@register_scenario(
    "collusion-attack",
    description=(
        "Multi-relay bandwidth inflation (TorMult-style): colluding "
        "cliques claim each other's measurement traffic as background. "
        "The per-relay clamp keeps report.adversary_inflation() under "
        "1/(1-r) even though the claimed bytes really exist on the "
        "wire; the same attack inflates TorFlow unboundedly."
    ),
)
def _collusion_attack(
    n_relays: int = 16,
    seed: int = 10,
    adversary_fraction: float = 0.5,
    **overrides,
) -> Scenario:
    return Scenario(
        name="collusion-attack",
        network=NetworkSpec(n_relays=n_relays, median=mbit(100), sigma=0.8),
        team=TeamSpec(),
        priors="truth",
        adversaries=AdversaryMix(
            entries=(
                AdversarySpec(
                    behavior="collusion", fraction=adversary_fraction
                ),
            )
        ),
        seed=seed,
        description="colluding cliques pooling measurement-traffic claims",
        **overrides,
    )


@register_scenario(
    "inflation-sweep",
    description=(
        "One grid point of the §5 inflation sweep: a small "
        "ground-truth network with a parameterized adversary behaviour "
        "and fraction. repro.attacks.inflation_sweep() drives this "
        "across behaviours x fractions and checks every point against "
        "the 1/(1-r) bound."
    ),
)
def _inflation_sweep(
    n_relays: int = 16,
    seed: int = 13,
    adversary_fraction: float = 0.25,
    behavior: str = "ratio-cheater",
    **overrides,
) -> Scenario:
    return Scenario(
        name="inflation-sweep",
        network=NetworkSpec(n_relays=n_relays, median=mbit(80), sigma=0.6),
        team=TeamSpec(),
        priors="truth",
        adversaries=AdversaryMix(
            entries=(
                AdversarySpec(behavior=behavior, fraction=adversary_fraction),
            )
        ),
        seed=seed,
        description="one behaviour x fraction point of the inflation sweep",
        **overrides,
    )


@register_scenario(
    "multi-period-deployment",
    description=(
        "The §4.3 continuous-operation loop: several 24-hour periods "
        "over one network, estimates carried forward as priors and "
        "aged out, one bandwidth file per period."
    ),
)
def _multi_period_deployment(
    n_relays: int = 12, seed: int = 44, periods: int = 3, **overrides
) -> Scenario:
    return Scenario(
        name="multi-period-deployment",
        network=NetworkSpec(n_relays=n_relays),
        team=TeamSpec(),
        priors=None,
        periods=periods,
        seed=seed,
        description="prior carryover and aging across measurement periods",
        **overrides,
    )


@register_scenario(
    "continuous-deployment",
    description=(
        "The per-period workload of the continuous bwauth daemon "
        "(repro.service): a generated network measured one period at a "
        "time, priors and churn supplied by the service layer. periods "
        "stays 1 -- the daemon owns the period loop, prior carryover, "
        "and publication cadence."
    ),
)
def _continuous_deployment(
    n_relays: int = 30, seed: int = 71, **overrides
) -> Scenario:
    return Scenario(
        name="continuous-deployment",
        network=NetworkSpec(n_relays=n_relays),
        team=TeamSpec(),
        priors=None,
        seed=seed,
        description="base workload for python -m repro.service",
        **overrides,
    )


@register_scenario(
    "shadow-measurement",
    description=(
        "The §7 Shadow measurement phase in isolation: congested-"
        "topology noise, per-relay background client traffic, cold "
        "priors -- the workload behind flashflow_weights_for. The "
        "surrounding flow simulations (TorFlow warmups, Figure 9 "
        "performance runs) honour ExecutionConfig.shadow_backend."
    ),
)
def _shadow_measurement(
    n_relays: int = 24, seed: int = 5, utilization: float = 0.35, **overrides
) -> Scenario:
    from repro.shadow.experiment import SHADOW_MEASUREMENT_NOISE

    return Scenario(
        name="shadow-measurement",
        network=NetworkSpec(n_relays=n_relays, prefix="pub"),
        team=TeamSpec(),
        priors=None,
        background=UtilizationBackground(
            fraction=utilization,
            jitter_std=0.4,
            rng_label="flashflow-shadow-bg",
        ),
        noise=SHADOW_MEASUREMENT_NOISE,
        seed=seed,
        description="shadow-style measurement with congestion noise",
        **overrides,
    )
