"""Streaming campaign events and pluggable observers.

:meth:`repro.api.campaign.Campaign.iter_rounds` yields these events as
the campaign executes; :meth:`Campaign.run` dispatches them to
:class:`CampaignObserver` instances. Events are plain frozen-ish
dataclasses carrying references into the evolving report (round
records, period records), so observers see per-round detail -- slots
packed, measurements executed, retries, relay state settle-backs --
without the campaign loop knowing who is listening.

Observers never influence results: estimates are bit-identical with
zero or many observers attached.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TextIO

from repro.api.report import RoundRecord
from repro.obs.metrics import MetricsRegistry


@dataclass
class CampaignEvent:
    """Base class; ``kind`` names the observer hook (``on_<kind>``)."""

    kind = "event"


@dataclass
class CampaignStarted(CampaignEvent):
    kind = "campaign_started"
    scenario_name: str
    n_relays: int
    n_measurers: int
    team_capacity: float
    periods: int
    backend: str | None


@dataclass
class PeriodStarted(CampaignEvent):
    kind = "period_started"
    period_index: int
    n_relays: int
    #: Relays entering the period with a usable prior estimate.
    n_priors: int


@dataclass
class RoundPlanned(CampaignEvent):
    """A campaign round's slots have been packed, before execution."""

    kind = "round_planned"
    period_index: int
    round_index: int
    #: Measurements scheduled this round (one per queued relay).
    n_jobs: int
    first_slot: int
    slots_packed: int


@dataclass
class RoundCompleted(CampaignEvent):
    """A round executed and its outcomes folded back.

    ``record`` carries every measurement of the round (estimates,
    accept/retry/failure classification, verification cell counts, and
    how many relays had walk state settled back).
    """

    kind = "round_completed"
    period_index: int
    round_index: int
    record: RoundRecord


@dataclass
class PeriodCompleted(CampaignEvent):
    kind = "period_completed"
    period_index: int
    #: The period's :class:`repro.core.netmeasure.CampaignResult`.
    result: object
    #: The deployment's :class:`repro.core.deployment.PeriodRecord`
    #: (None for single-period campaigns, which publish no bwfile).
    deployment_record: object | None = None


@dataclass
class CampaignCompleted(CampaignEvent):
    kind = "campaign_completed"
    #: The finished :class:`repro.api.report.CampaignReport`.
    report: object


class CampaignObserver:
    """Base observer: dispatches each event to ``on_<event.kind>``.

    Subclasses override the hooks they care about, or ``on_event`` for
    a catch-all. Unknown event kinds are ignored, so observers stay
    compatible as new events appear.
    """

    def on_event(self, event: CampaignEvent) -> None:
        handler = getattr(self, f"on_{event.kind}", None)
        if handler is not None:
            handler(event)


class ProgressObserver(CampaignObserver):
    """Human-readable per-round progress lines."""

    def __init__(self, stream: TextIO | None = None):
        self.stream = stream if stream is not None else sys.stderr
        self._accepted = 0
        self._total = 0

    def _emit(self, text: str) -> None:
        print(text, file=self.stream)

    def on_campaign_started(self, event: CampaignStarted) -> None:
        self._accepted = 0
        self._total = event.n_relays
        self._emit(
            f"[{event.scenario_name}] {event.n_relays} relays, "
            f"{event.n_measurers} measurers "
            f"({event.team_capacity / 1e9:.1f} Gbit/s), "
            f"{event.periods} period(s), "
            f"backend={event.backend or 'auto'}"
        )

    def on_period_started(self, event: PeriodStarted) -> None:
        self._accepted = 0
        self._emit(
            f"  period {event.period_index}: {event.n_relays} relays, "
            f"{event.n_priors} with priors"
        )

    def on_round_completed(self, event: RoundCompleted) -> None:
        record = event.record
        self._accepted += record.n_accepted
        self._emit(
            f"    round {event.round_index}: {len(record.measurements)} "
            f"measured in {record.slots_packed} slots -- "
            f"{record.n_accepted} accepted, {record.n_retried} retried, "
            f"{record.n_failed} failed "
            f"({self._accepted}/{self._total} done, "
            f"{record.wall_seconds:.2f}s)"
        )


@dataclass
class RoundMetrics:
    """One round's aggregate numbers, as collected by MetricsObserver."""

    period_index: int
    round_index: int
    n_measurements: int
    n_accepted: int
    n_retried: int
    n_failed: int
    slots_packed: int
    cells_checked: int
    wall_seconds: float


class MetricsObserver(CampaignObserver):
    """Collects per-round aggregates for later analysis.

    Built on a private :class:`repro.obs.MetricsRegistry` (one per
    observer, so campaigns never mix): each round increments the
    ``rounds``/``measurements``/``accepted``/``retried``/``failed``/
    ``slots``/``cells_checked`` counters and observes the round wall
    time, and :meth:`summary` reads them back. The per-round
    :class:`RoundMetrics` list is kept alongside, unchanged.
    """

    def __init__(self):
        self.rounds: list[RoundMetrics] = []
        self.registry = MetricsRegistry()

    def on_round_completed(self, event: RoundCompleted) -> None:
        record = event.record
        metrics = RoundMetrics(
            period_index=event.period_index,
            round_index=event.round_index,
            n_measurements=len(record.measurements),
            n_accepted=record.n_accepted,
            n_retried=record.n_retried,
            n_failed=record.n_failed,
            slots_packed=record.slots_packed,
            cells_checked=record.cells_checked,
            wall_seconds=record.wall_seconds,
        )
        self.rounds.append(metrics)
        registry = self.registry
        registry.counter("rounds").inc()
        registry.counter("measurements").inc(metrics.n_measurements)
        registry.counter("accepted").inc(metrics.n_accepted)
        registry.counter("retried").inc(metrics.n_retried)
        registry.counter("failed").inc(metrics.n_failed)
        registry.counter("slots").inc(metrics.slots_packed)
        registry.counter("cells_checked").inc(metrics.cells_checked)
        registry.histogram("round.wall_seconds").observe(
            metrics.wall_seconds
        )

    def summary(self) -> dict[str, float]:
        registry = self.registry
        return {
            "rounds": registry.counter("rounds").value,
            "measurements": registry.counter("measurements").value,
            "accepted": registry.counter("accepted").value,
            "retried": registry.counter("retried").value,
            "failed": registry.counter("failed").value,
            "slots": registry.counter("slots").value,
            "cells_checked": registry.counter("cells_checked").value,
            "wall_seconds": registry.histogram("round.wall_seconds").total,
        }


class TimingObserver(CampaignObserver):
    """Wall-clock timing per round and for the whole campaign.

    Round wall times live in a private registry histogram
    (``round.wall_seconds``); ``round_seconds`` exposes the histogram's
    retained samples as the historical list API.
    """

    def __init__(self):
        self.registry = MetricsRegistry()
        self.total_seconds: float = 0.0
        self._started: float | None = None

    @property
    def round_seconds(self) -> list[float]:
        return list(self.registry.histogram("round.wall_seconds").samples)

    def on_campaign_started(self, event: CampaignStarted) -> None:
        self._started = time.perf_counter()

    def on_round_completed(self, event: RoundCompleted) -> None:
        self.registry.histogram("round.wall_seconds").observe(
            event.record.wall_seconds
        )

    def on_campaign_completed(self, event: CampaignCompleted) -> None:
        if self._started is not None:
            self.total_seconds = time.perf_counter() - self._started
