"""The campaign runner: Scenario + ExecutionConfig -> streamed rounds.

This module owns the canonical FlashFlow campaign loop (formerly the
body of :func:`repro.core.netmeasure.measure_network`, which is now a
thin deprecation shim over it). Each campaign *round* packs every
waiting relay into consecutive t-second slots greedily (largest first,
the paper's efficiency scheduler); the round's measurements execute
concurrently through :class:`repro.core.engine.MeasurementEngine.\
run_many`, which lowers them onto the vectorized kernel
(:mod:`repro.kernel`) -- with ``ExecutionConfig(pipeline=)`` the
stateful compile stream overlaps worker execution inside each round --
while ``full_simulation=False`` rounds run whole-round analytic
estimates through :mod:`repro.kernel.analytic`; outcomes fold back in
deterministic slot order and inconclusive relays re-enter the next
round with a doubled estimate. Retries are round-granular (see the
shim's docstring for the history); for a fixed worker count the whole
campaign is deterministic, and estimates are bit-identical on every
backend, pipelined or not.

Round-to-round lookahead is deliberately *not* pipelined: round N+1's
jobs are exactly round N's retries, and compiling a retry consumes the
relay's jitter stream and token-bucket snapshot *after* round N's walk
settles back onto it -- so cross-round speculative compilation cannot
be bit-identical. The pipeline's lookahead is therefore bounded to one
round: within round N, measurement k+chunk compiles while measurements
<= k execute in the worker pool.

:class:`Campaign` adds streaming on top: :meth:`Campaign.iter_rounds`
yields :mod:`repro.api.events` as rounds plan and complete, and
:meth:`Campaign.run` dispatches them to observers while assembling a
:class:`repro.api.report.CampaignReport`. Multi-period scenarios run
the :class:`repro.core.deployment.Deployment` loop -- prior carryover,
estimate aging, a bandwidth file per period -- with every period's
rounds streamed through the same event surface.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.api.events import (
    CampaignCompleted,
    CampaignEvent,
    CampaignObserver,
    CampaignStarted,
    PeriodCompleted,
    PeriodStarted,
    RoundCompleted,
    RoundPlanned,
)
from repro.api.execution import ExecutionConfig
from repro.api.report import CampaignReport, MeasurementRecord, RoundRecord
from repro.api.scenario import ResolvedScenario, Scenario
from repro.core.allocation import MeasurerAssignment, allocate_capacity, total_allocated
from repro.core.bwauth import FlashFlowAuthority
from repro.core.deployment import Deployment
from repro.core.engine import (
    MeasurementEngine,
    MeasurementNoise,
    MeasurementSpec,
)
from repro.core.netmeasure import (
    CampaignResult,
    normalize_background_demand,
)
from repro.kernel.analytic import run_analytic_round
from repro.obs import (
    JsonlTraceWriter,
    Tracer,
    get_registry,
    get_tracer,
    run_manifest,
    use_tracer,
)
from repro.rng import fork
from repro.tornet.network import TorNetwork
from repro.tornet.relay import Relay


@dataclass
class _Job:
    """One scheduled measurement of a campaign round."""

    fingerprint: str
    z0: float
    rounds: int
    slot_index: int
    relay: Relay
    capped: bool
    assignments: list[MeasurerAssignment]
    background: float | Callable[[int], float]
    #: Pre-drawn analytic measurement-error factor (analytic mode only).
    wobble: float | None = None


def run_period_rounds(
    network: TorNetwork,
    authority: FlashFlowAuthority,
    priors: dict[str, float],
    background: float | dict[str, float] | Callable[[int], float],
    execution: ExecutionConfig,
    noise: MeasurementNoise | None = None,
    engine: MeasurementEngine | None = None,
    period_index: int = 0,
    rounds_out: list[RoundRecord] | None = None,
) -> Iterator[CampaignEvent]:
    """Run one measurement period as a round-event generator.

    Yields :class:`RoundPlanned` / :class:`RoundCompleted` events and
    *returns* (via ``StopIteration.value`` / ``yield from``) the
    period's :class:`CampaignResult`. This generator is the single
    implementation of the campaign loop; the ``measure_network`` shim
    drains it without observers and every ``Campaign`` streams it.

    Semantics are op-for-op those of the historical ``measure_network``
    body: the analytic-wobble RNG forks from ``(authority.seed,
    "campaign-analytic")`` and draws in job-packing order, measurement
    seeds derive from slot index and attempt, accepted estimates are
    folded into ``authority.estimates``, and retries are
    round-granular. ``period_index`` labels events only -- it does not
    enter seeds or specs, so re-running a period reproduces the exact
    historical deployment behaviour (stateful relays still evolve
    between periods).
    """
    params = authority.params
    team = authority.team
    team_capacity = authority.team_capacity()
    result = CampaignResult(slot_seconds=params.slot_seconds)
    rng = fork(authority.seed, "campaign-analytic")
    if engine is None:
        engine = getattr(authority, "engine", None) or MeasurementEngine()
    background_for = normalize_background_demand(background)

    old = [fp for fp in network.relays if fp in priors]
    new = [fp for fp in network.relays if fp not in priors]
    # Old relays first (guaranteed measurement), then new FCFS; within
    # each class, largest guess first to pack slots tightly.
    old.sort(key=lambda fp: priors[fp], reverse=True)
    queue: deque[tuple[str, float, int]] = deque(
        [(fp, priors[fp], 0) for fp in old]
        + [(fp, params.new_relay_seed, 0) for fp in new]
    )

    def required_for(z0: float) -> float:
        return min(params.allocation_factor * max(z0, 1.0), team_capacity)

    slot_index = 0
    round_index = 0
    while queue:
        tracer = get_tracer()
        with tracer.span(
            "round", period_index=period_index, round_index=round_index
        ) as round_span:
            # --- Pack the whole waiting queue into consecutive slots --
            # Every queued relay is independent of the others' outcomes,
            # so a round's slots can all be planned up front and run
            # concurrently.
            with tracer.span("round.pack"):
                first_slot = slot_index
                jobs: list[_Job] = []
                waiting = queue
                while waiting:
                    residual = team_capacity
                    this_slot: list[tuple[str, float, int]] = []
                    deferred: deque[tuple[str, float, int]] = deque()
                    while waiting:
                        fp, z0, rounds = waiting.popleft()
                        if required_for(z0) <= residual + 1e-6:
                            this_slot.append((fp, z0, rounds))
                            residual -= required_for(z0)
                        else:
                            deferred.append((fp, z0, rounds))
                    if not this_slot:
                        # Should be unreachable: required is capped at
                        # team capacity.
                        this_slot.append(deferred.popleft())

                    for fp, z0, rounds in this_slot:
                        required = required_for(z0)
                        jobs.append(
                            _Job(
                                fingerprint=fp,
                                z0=z0,
                                rounds=rounds,
                                slot_index=slot_index,
                                relay=network[fp],
                                capped=(
                                    required
                                    < params.allocation_factor * z0
                                ),
                                assignments=allocate_capacity(
                                    team, required
                                ),
                                background=background_for(fp),
                                wobble=(
                                    None
                                    if execution.full_simulation
                                    else max(
                                        0.8,
                                        rng.gauss(
                                            1.0,
                                            execution.analytic_error_std,
                                        ),
                                    )
                                ),
                            )
                        )
                    slot_index += 1
                    waiting = deferred

            round_span.set(
                n_jobs=len(jobs), slots_packed=slot_index - first_slot
            )
            yield RoundPlanned(
                period_index=period_index,
                round_index=round_index,
                n_jobs=len(jobs),
                first_slot=first_slot,
                slots_packed=slot_index - first_slot,
            )

            # --- Execute the round ------------------------------------
            started = time.perf_counter()
            accepted: list[bool] | None = None
            if execution.full_simulation:
                specs = [
                    MeasurementSpec(
                        target=job.relay,
                        assignments=job.assignments,
                        params=params,
                        network=authority.network,
                        background_demand=job.background,
                        seed=authority.seed
                        + job.slot_index * 7919
                        + job.rounds,
                        bwauth_id=authority.name,
                        period_index=0,
                        enforce_admission=False,
                        noise=noise,
                    )
                    for job in jobs
                ]
                outcomes = engine.run_many(
                    specs,
                    max_workers=execution.max_workers,
                    backend=execution.backend,
                    pipeline=execution.pipeline,
                    shards=execution.shards,
                )
                results = [
                    (o.estimate, o.failed, o.failure_reason, o.cells_checked)
                    for o in outcomes
                ]
            else:
                # The analytic kernel walks the whole round as one array
                # op (estimates + accept decisions); ``serial`` keeps the
                # historical scalar analytic_estimate loop and leaves the
                # decisions to the fold below. Bit-identical either way.
                analytic = run_analytic_round(
                    engine, jobs, params,
                    backend=execution.backend,
                    shards=execution.shards,
                )
                results = [(z, False, None, 0) for z in analytic.estimates]
                accepted = analytic.accepted

            # --- Fold outcomes back in deterministic slot order -------
            with tracer.span("round.fold"):
                record = RoundRecord(
                    period_index=period_index,
                    round_index=round_index,
                    first_slot=first_slot,
                    slots_packed=slot_index - first_slot,
                )
                retries: deque[tuple[str, float, int]] = deque()
                for i, (job, (z, failed, reason, cells_checked)) in enumerate(
                    zip(jobs, results)
                ):
                    result.measurements_run += 1
                    measurement = MeasurementRecord(
                        period_index=period_index,
                        round_index=round_index,
                        slot_index=job.slot_index,
                        fingerprint=job.fingerprint,
                        attempt=job.rounds,
                        planned_estimate=job.z0,
                        estimate=z,
                        failed=failed,
                        failure_reason=reason,
                        cells_checked=cells_checked,
                        settled=execution.full_simulation and not failed,
                    )
                    record.measurements.append(measurement)
                    if failed:
                        result.failures[job.fingerprint] = (
                            reason or "measurement failed"
                        )
                        continue
                    if accepted is not None:
                        # Pre-computed by the analytic kernel's array
                        # walk -- bit-identical to the scalar
                        # recomputation below.
                        accept = accepted[i]
                    else:
                        threshold = params.acceptance_threshold(
                            total_allocated(job.assignments)
                        )
                        accept = z < threshold or job.capped
                    if accept:
                        result.estimates[job.fingerprint] = z
                        authority.estimates[job.fingerprint] = z
                        measurement.accepted = True
                    elif job.rounds + 1 >= execution.max_rounds:
                        # ``job.rounds`` counts *prior* attempts, so this
                        # measurement was attempt ``job.rounds + 1``: a
                        # relay that never converges is attempted exactly
                        # ``execution.max_rounds`` times before giving up
                        # (pinned by tests/api/test_max_rounds.py).
                        result.failures[job.fingerprint] = "did not converge"
                        measurement.failed = True
                        measurement.failure_reason = "did not converge"
                    else:
                        retries.append(
                            (
                                job.fingerprint,
                                max(z, 2.0 * job.z0),
                                job.rounds + 1,
                            )
                        )
                        measurement.retried = True
            record.wall_seconds = time.perf_counter() - started

            registry = get_registry()
            registry.counter("campaign.rounds").inc()
            registry.counter("campaign.measurements").inc(
                len(record.measurements)
            )
            registry.counter("campaign.accepted").inc(record.n_accepted)
            registry.counter("campaign.retried").inc(record.n_retried)
            registry.counter("campaign.failed").inc(record.n_failed)

            if rounds_out is not None:
                rounds_out.append(record)
            yield RoundCompleted(
                period_index=period_index,
                round_index=round_index,
                record=record,
            )
        queue = retries
        round_index += 1

    result.slots_elapsed = slot_index
    return result


class Campaign:
    """A runnable (scenario, execution) pair.

    >>> from repro.api import Campaign, ExecutionConfig, Scenario
    >>> report = Campaign(Scenario(), ExecutionConfig()).run()

    ``engine`` overrides the authority's shared
    :class:`MeasurementEngine` (benches use this to re-time historical
    execution paths); almost all callers leave it None.
    """

    def __init__(
        self,
        scenario: Scenario,
        execution: ExecutionConfig | None = None,
        engine: MeasurementEngine | None = None,
    ):
        self.scenario = scenario
        self.execution = execution or ExecutionConfig()
        self.engine = engine
        #: Set when a run completes (also delivered via
        #: :class:`CampaignCompleted` and returned from :meth:`run`).
        self.report: CampaignReport | None = None
        #: The most recent run's resolved scenario (live objects).
        self.resolved: ResolvedScenario | None = None
        #: The tracer the most recent run recorded into: the JSONL
        #: tracer when ``execution.trace`` is set, else whatever was
        #: ambient (normally the null tracer). CLIs use this to render
        #: the post-run summary table.
        self.tracer = None

    def iter_rounds(self) -> Iterator[CampaignEvent]:
        """Stream the campaign: resolve, run every period, yield events.

        The final event is :class:`CampaignCompleted` carrying the
        report; afterwards ``self.report`` is set.

        When ``execution.trace`` is set, a recording tracer streams
        ``campaign > period > round`` spans to that JSONL file and is
        finalized (metrics snapshot + end record) when the generator
        finishes or is closed. Otherwise the ambient tracer -- normally
        the no-op null tracer -- is used as-is, so untraced runs pay
        nothing and benches can install their own recording tracer.
        """
        execution = self.execution
        if execution.trace is None:
            self.tracer = get_tracer()
            yield from self._iter_rounds(self.tracer)
            return
        scenario = self.scenario
        manifest = run_manifest(
            scenario_name=scenario.name,
            seed=scenario.seed,
            backend=execution.backend,
            shadow_backend=execution.shadow_backend,
            shards=execution.shards,
            pipeline=execution.pipeline,
            full_simulation=execution.full_simulation,
            periods=scenario.periods,
            max_rounds=execution.max_rounds,
        )
        tracer = Tracer(sink=JsonlTraceWriter(execution.trace, manifest))
        self.tracer = tracer
        try:
            with use_tracer(tracer):
                yield from self._iter_rounds(tracer)
        finally:
            # Runs on normal completion AND on generator close/abandon,
            # so a killed run still gets its metrics + end records.
            tracer.finish(registry=get_registry())

    def _iter_rounds(self, tracer: Tracer) -> Iterator[CampaignEvent]:
        scenario, execution = self.scenario, self.execution
        campaign_span = tracer.span(
            "campaign",
            scenario=scenario.name,
            backend=execution.backend,
            periods=scenario.periods,
            full_simulation=execution.full_simulation,
        )
        with campaign_span:
            with tracer.span("campaign.resolve"):
                resolved = scenario.resolve()
            yield from self._run_resolved(resolved, campaign_span, tracer)

    def _run_resolved(
        self,
        resolved: ResolvedScenario,
        campaign_span,
        tracer: Tracer,
    ) -> Iterator[CampaignEvent]:
        scenario, execution = self.scenario, self.execution
        self.resolved = resolved
        self.report = None
        network, authority = resolved.network, resolved.authority
        campaign_span.set(
            n_relays=len(network), n_measurers=len(authority.team)
        )
        started = time.perf_counter()

        yield CampaignStarted(
            scenario_name=scenario.name,
            n_relays=len(network),
            n_measurers=len(authority.team),
            team_capacity=authority.team_capacity(),
            periods=scenario.periods,
            backend=execution.backend,
        )

        rounds: list[RoundRecord] = []
        period_results: list[CampaignResult] = []
        deployment_records: list = []
        result: CampaignResult | None = None

        if scenario.periods == 1:
            yield PeriodStarted(
                period_index=0,
                n_relays=len(network),
                n_priors=len(resolved.priors),
            )
            with tracer.span("period", period_index=0):
                result = yield from run_period_rounds(
                    network,
                    authority,
                    resolved.priors,
                    resolved.background,
                    execution,
                    noise=resolved.noise,
                    engine=self.engine,
                    period_index=0,
                    rounds_out=rounds,
                )
            yield PeriodCompleted(period_index=0, result=result)
        else:
            # The deployment owns prior carryover and estimate aging;
            # the campaign streams each period's rounds through it.
            deployment = Deployment(
                authority=authority,
                full_simulation=execution.full_simulation,
            )
            for period_index in range(scenario.periods):
                priors = deployment.priors_for(network)
                if period_index == 0:
                    priors = {**resolved.priors, **priors}
                yield PeriodStarted(
                    period_index=period_index,
                    n_relays=len(network),
                    n_priors=len(priors),
                )
                with tracer.span("period", period_index=period_index):
                    result = yield from run_period_rounds(
                        network,
                        authority,
                        priors,
                        resolved.background,
                        execution,
                        noise=resolved.noise,
                        engine=self.engine,
                        period_index=period_index,
                        rounds_out=rounds,
                    )
                period_results.append(result)
                deployment_record = deployment.record_period(result)
                deployment_records.append(deployment_record)
                yield PeriodCompleted(
                    period_index=period_index,
                    result=result,
                    deployment_record=deployment_record,
                )

        report = CampaignReport(
            scenario_name=scenario.name,
            result=result,
            rounds=rounds,
            period_results=period_results,
            deployment_records=deployment_records,
            ground_truth=resolved.ground_truth,
            adversaries=resolved.adversaries,
            wall_seconds=time.perf_counter() - started,
        )
        self.report = report
        yield CampaignCompleted(report=report)

    def run(
        self, observers: Sequence[CampaignObserver] = ()
    ) -> CampaignReport:
        """Run to completion, dispatching every event to ``observers``."""
        observers = list(observers)
        for event in self.iter_rounds():
            for observer in observers:
                observer.on_event(event)
        assert self.report is not None
        return self.report
