"""CLI smoke runner for registered scenarios (used by CI).

Usage::

    PYTHONPATH=src python -m repro.api --list
    PYTHONPATH=src python -m repro.api fig06-accuracy --backend serial
    PYTHONPATH=src python -m repro.api whole-network-efficiency -o n_relays=50

Runs the named scenario through :class:`repro.api.Campaign` with a
progress observer and prints the report summary as JSON. ``-o
key=value`` overrides are parsed as Python literals where possible.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from contextlib import nullcontext

from repro.api import (
    Campaign,
    ExecutionConfig,
    ProgressObserver,
    default_execution_for,
    get_scenario,
    scenario_registry,
)
from repro.obs import (
    Tracer,
    get_registry,
    maybe_profile,
    render_summary,
    use_tracer,
)


def _parse_override(text: str) -> tuple[str, object]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} must look like key=value"
        )
    key, raw = text.split("=", 1)
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api", description=__doc__
    )
    parser.add_argument("scenario", nargs="?", help="registered scenario name")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--backend", default=None,
                        help="kernel backend "
                             "(serial/thread/process/vector/analytic)")
    parser.add_argument("--pipeline", dest="pipeline", default=None,
                        action="store_true",
                        help="force pipelined rounds (compile stream "
                             "overlaps worker execution); default: auto "
                             "on pool backends")
    parser.add_argument("--no-pipeline", dest="pipeline",
                        action="store_false",
                        help="disable pipelined rounds")
    parser.add_argument("--shadow-backend", default=None,
                        help="shadow flow-simulator backend (stateful/vector) "
                             "carried in the execution config; only "
                             "flow-simulating pipelines (e.g. "
                             "compare_load_balancing) consult it -- the "
                             "measurement-only registry scenarios ignore it")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a flashflow-trace/1 JSONL trace of "
                             "the run (manifest, campaign/round/kernel "
                             "spans, metrics snapshot) to PATH")
    parser.add_argument("--metrics", action="store_true",
                        help="print the span/metrics summary table to "
                             "stderr after the run (implies recording; "
                             "with --trace the same tracer feeds both)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="cProfile the run into PATH (pstats; a "
                             "sibling PATH.txt carries the top rows)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-round progress lines")
    parser.add_argument("-o", "--override", action="append", default=[],
                        type=_parse_override, metavar="KEY=VALUE",
                        help="scenario factory override (repeatable)")
    args = parser.parse_args(argv)

    if args.list or not args.scenario:
        for name, entry in sorted(scenario_registry().items()):
            print(f"{name:28s} {entry.description}")
        return 0 if args.list else 2

    base = default_execution_for(args.scenario)
    execution = ExecutionConfig(
        backend=args.backend,
        shadow_backend=args.shadow_backend,
        max_workers=args.workers,
        full_simulation=base.full_simulation,
        max_rounds=base.max_rounds,
        analytic_error_std=base.analytic_error_std,
        pipeline=args.pipeline,
        trace=args.trace,
    )
    observers = () if args.quiet else (ProgressObserver(stream=sys.stderr),)
    campaign = Campaign(
        get_scenario(args.scenario, **dict(args.override)), execution
    )
    # --metrics without --trace records in memory only: install an
    # ambient tracer for the run (with --trace the campaign's own JSONL
    # tracer records, and the summary renders from it afterwards).
    ambient = (
        use_tracer(Tracer())
        if args.metrics and not args.trace
        else nullcontext()
    )
    with maybe_profile(args.profile), ambient:
        report = campaign.run(observers=observers)
    print(json.dumps(report.to_dict(), indent=2))
    if args.metrics:
        print(render_summary(campaign.tracer, get_registry()),
              file=sys.stderr)
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
