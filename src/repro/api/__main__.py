"""CLI smoke runner for registered scenarios (used by CI).

Usage::

    PYTHONPATH=src python -m repro.api --list
    PYTHONPATH=src python -m repro.api fig06-accuracy --backend serial
    PYTHONPATH=src python -m repro.api whole-network-efficiency -o n_relays=50

Runs the named scenario through :class:`repro.api.Campaign` with a
progress observer and prints the report summary as JSON. ``-o
key=value`` overrides are parsed as Python literals where possible.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys

from repro.api import (
    ExecutionConfig,
    ProgressObserver,
    default_execution_for,
    run_scenario,
    scenario_names,
    scenario_registry,
)


def _parse_override(text: str) -> tuple[str, object]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} must look like key=value"
        )
    key, raw = text.split("=", 1)
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api", description=__doc__
    )
    parser.add_argument("scenario", nargs="?", help="registered scenario name")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--backend", default=None,
                        help="kernel backend "
                             "(serial/thread/process/vector/analytic)")
    parser.add_argument("--pipeline", dest="pipeline", default=None,
                        action="store_true",
                        help="force pipelined rounds (compile stream "
                             "overlaps worker execution); default: auto "
                             "on pool backends")
    parser.add_argument("--no-pipeline", dest="pipeline",
                        action="store_false",
                        help="disable pipelined rounds")
    parser.add_argument("--shadow-backend", default=None,
                        help="shadow flow-simulator backend (stateful/vector) "
                             "carried in the execution config; only "
                             "flow-simulating pipelines (e.g. "
                             "compare_load_balancing) consult it -- the "
                             "measurement-only registry scenarios ignore it")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-round progress lines")
    parser.add_argument("-o", "--override", action="append", default=[],
                        type=_parse_override, metavar="KEY=VALUE",
                        help="scenario factory override (repeatable)")
    args = parser.parse_args(argv)

    if args.list or not args.scenario:
        for name, entry in sorted(scenario_registry().items()):
            print(f"{name:28s} {entry.description}")
        return 0 if args.list else 2

    base = default_execution_for(args.scenario)
    execution = ExecutionConfig(
        backend=args.backend,
        shadow_backend=args.shadow_backend,
        max_workers=args.workers,
        full_simulation=base.full_simulation,
        max_rounds=base.max_rounds,
        analytic_error_std=base.analytic_error_std,
        pipeline=args.pipeline,
    )
    observers = () if args.quiet else (ProgressObserver(stream=sys.stderr),)
    report = run_scenario(
        args.scenario,
        execution=execution,
        observers=observers,
        **dict(args.override),
    )
    print(json.dumps(report.to_dict(), indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
