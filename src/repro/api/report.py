"""Rich campaign results: per-round timelines, truth error, verification.

:class:`CampaignReport` is the return value of
:meth:`repro.api.campaign.Campaign.run` -- a strict superset of the
legacy :class:`repro.core.netmeasure.CampaignResult` (which it embeds
as ``result``, so every old consumer keeps working through the
deprecation shims). On top it records the per-round measurement
timeline, error-versus-truth when the scenario knows ground truth
(generated networks always do), echo-cell verification statistics, and
the per-period deployment records of multi-period scenarios.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.core.netmeasure import CampaignResult


@dataclass
class MeasurementRecord:
    """One executed measurement (a relay in one slot of one round)."""

    period_index: int
    round_index: int
    slot_index: int
    fingerprint: str
    #: Retry ordinal: 0 for the relay's first measurement this period.
    attempt: int
    #: z0 the slot was planned around (bit/s).
    planned_estimate: float
    #: Measured z (bit/s); 0.0 for failed slots.
    estimate: float
    accepted: bool = False
    retried: bool = False
    failed: bool = False
    failure_reason: str | None = None
    #: Echo cells the BWAuth verified during this slot.
    cells_checked: int = 0
    #: Whether per-second walk state was settled back onto the relay
    #: (full-simulation measurements that produced a walk).
    settled: bool = False


@dataclass
class RoundRecord:
    """One campaign round: its packed slots and every measurement."""

    period_index: int
    round_index: int
    first_slot: int
    slots_packed: int
    measurements: list[MeasurementRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_accepted(self) -> int:
        return sum(1 for m in self.measurements if m.accepted)

    @property
    def n_retried(self) -> int:
        return sum(1 for m in self.measurements if m.retried)

    @property
    def n_failed(self) -> int:
        return sum(1 for m in self.measurements if m.failed)

    @property
    def n_settled(self) -> int:
        return sum(1 for m in self.measurements if m.settled)

    @property
    def cells_checked(self) -> int:
        return sum(m.cells_checked for m in self.measurements)


@dataclass
class CampaignReport:
    """Everything a campaign produced.

    ``result`` is the final period's legacy
    :class:`~repro.core.netmeasure.CampaignResult` -- bit-identical to
    what the pre-API entry points returned for the same workload.
    """

    scenario_name: str
    #: The final (for multi-period: last) period's legacy result.
    result: CampaignResult
    #: Per-round timeline across all periods, in execution order.
    rounds: list[RoundRecord] = field(default_factory=list)
    #: Multi-period deployments: one CampaignResult per period.
    period_results: list[CampaignResult] = field(default_factory=list)
    #: Multi-period deployments: the deployment's PeriodRecords
    #: (bandwidth file per period); empty for single-period campaigns.
    deployment_records: list = field(default_factory=list)
    #: Ground-truth capacities (bit/s) when the scenario knows them.
    ground_truth: dict[str, float] = field(default_factory=dict)
    #: fingerprint -> adversary behaviour name for adversarial relays.
    adversaries: dict[str, str] = field(default_factory=dict)
    wall_seconds: float = 0.0

    # -- CampaignResult-compatible surface ----------------------------

    @property
    def estimates(self) -> dict[str, float]:
        return self.result.estimates

    @property
    def failures(self) -> dict[str, str]:
        return self.result.failures

    @property
    def slots_elapsed(self) -> int:
        return self.result.slots_elapsed

    @property
    def seconds_elapsed(self) -> int:
        return self.result.seconds_elapsed

    @property
    def hours_elapsed(self) -> float:
        return self.result.hours_elapsed

    @property
    def measurements_run(self) -> int:
        """Measurements across *all* periods (retries included)."""
        return sum(len(r.measurements) for r in self.rounds)

    # -- Supersets ----------------------------------------------------

    @property
    def n_periods(self) -> int:
        return max(1, len(self.period_results))

    @property
    def cells_checked(self) -> int:
        """Echo cells verified across the whole campaign."""
        return sum(r.cells_checked for r in self.rounds)

    def verification_stats(self) -> dict[str, int]:
        return {
            "cells_checked": self.cells_checked,
            "verification_failures": sum(
                1
                for r in self.rounds
                for m in r.measurements
                if m.failed and m.failure_reason
                and "verif" in m.failure_reason.lower()
            ),
        }

    def timeline(self) -> list[MeasurementRecord]:
        """Every measurement in execution order."""
        return [m for r in self.rounds for m in r.measurements]

    def error_vs_truth(self) -> dict[str, float]:
        """Eq 2 per relay: 1 - estimate/capacity (needs ground truth).

        Relays without an accepted estimate count as fully
        under-estimated (error 1.0), matching the §7 error metrics.
        """
        return {
            fp: 1.0 - self.estimates.get(fp, 0.0) / truth
            for fp, truth in self.ground_truth.items()
            if truth > 0
        }

    def median_error_vs_truth(self) -> float:
        errors = [abs(e) for e in self.error_vs_truth().values()]
        if not errors:
            raise ValueError("scenario has no ground truth")
        return float(statistics.median(errors))

    def adversary_inflation(self) -> dict[str, float]:
        """estimate/truth per adversarial relay (the §5 bound check)."""
        return {
            fp: self.estimates.get(fp, 0.0) / self.ground_truth[fp]
            for fp in self.adversaries
            if self.ground_truth.get(fp, 0.0) > 0
        }

    def to_dict(self) -> dict:
        """A JSON-friendly summary (used by benches and CI smoke)."""
        summary = {
            "scenario": self.scenario_name,
            "periods": self.n_periods,
            "relays_estimated": len(self.estimates),
            "failures": len(self.failures),
            "rounds": len(self.rounds),
            "measurements_run": self.measurements_run,
            "slots_elapsed": self.slots_elapsed,
            "hours_elapsed": round(self.hours_elapsed, 4),
            "cells_checked": self.cells_checked,
            "wall_seconds": round(self.wall_seconds, 4),
            "estimate_total_bits": sum(self.estimates.values()),
        }
        if self.ground_truth:
            summary["median_abs_error_vs_truth"] = round(
                self.median_error_vs_truth(), 6
            )
            summary["network_error_vs_truth"] = round(
                1.0
                - sum(self.estimates.get(fp, 0.0) for fp in self.ground_truth)
                / max(1e-12, sum(self.ground_truth.values())),
                6,
            )
        if self.adversaries:
            inflation = self.adversary_inflation()
            summary["adversaries"] = len(self.adversaries)
            summary["max_adversary_inflation"] = round(
                max(inflation.values(), default=0.0), 4
            )
        return summary
