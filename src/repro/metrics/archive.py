"""Archive data structures for the §3 analysis.

A :class:`MetricsArchive` holds, at hourly granularity, each relay's
advertised bandwidth (the step function induced by 18-hour descriptor
publication) and normalized consensus weight, plus an online/offline
presence mask. The synthetic generator also records ground-truth
capacities, which real archives lack but which let the test suite verify
the analysis pipeline end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class MetricsArchive:
    """Hourly time series for a set of relays.

    Arrays are indexed ``[relay, hour]``; entries where ``presence`` is
    False are ignored by the analysis (NaN-equivalent).
    """

    relays: list[str]
    #: Advertised bandwidth A(r, t), bytes/second.
    advertised: np.ndarray
    #: Normalized consensus weight W(r, t) (each column sums to ~1).
    weights: np.ndarray
    #: Online mask.
    presence: np.ndarray
    #: Ground-truth capacities (bytes/second); synthetic archives only.
    true_capacity: np.ndarray | None = None
    start_hour: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.relays)
        for name, array in (
            ("advertised", self.advertised),
            ("weights", self.weights),
            ("presence", self.presence),
        ):
            if array.shape[0] != n:
                raise ConfigurationError(
                    f"{name} first dimension must match relay count"
                )
        if self.advertised.shape != self.weights.shape:
            raise ConfigurationError("advertised/weights shape mismatch")
        if self.presence.shape != self.advertised.shape:
            raise ConfigurationError("presence shape mismatch")

    @property
    def n_relays(self) -> int:
        return len(self.relays)

    @property
    def n_hours(self) -> int:
        return self.advertised.shape[1]

    def masked_advertised(self) -> np.ndarray:
        """Advertised bandwidths with offline hours as NaN."""
        out = self.advertised.astype(float).copy()
        out[~self.presence] = np.nan
        return out

    def masked_weights(self) -> np.ndarray:
        out = self.weights.astype(float).copy()
        out[~self.presence] = np.nan
        return out

    def network_advertised_total(self) -> np.ndarray:
        """Sum of advertised bandwidth over online relays, per hour."""
        masked = np.where(self.presence, self.advertised, 0.0)
        return masked.sum(axis=0)
