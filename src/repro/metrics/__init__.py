"""Tor metrics analysis (paper §3 and Appendix A).

The paper quantifies TorFlow's capacity-estimation and load-balancing
error from 11 years of archived Tor metrics data. This package rebuilds
that pipeline:

- :mod:`repro.metrics.archive` -- the archive data structures (hourly
  advertised bandwidths and consensus weights per relay);
- :mod:`repro.metrics.datagen` -- a synthetic archive generator driven by
  the mechanism the paper identifies (the observed-bandwidth heuristic
  under persistent under-utilisation with a weight feedback loop);
- :mod:`repro.metrics.analysis` -- Equations 1-7: relay/network capacity
  error, relay/network weight error, and relative standard deviations;
- :mod:`repro.metrics.speedtest` -- the §3.4 live flood experiment replay
  (Figure 5).
"""

from repro.metrics.analysis import (
    capacity_proxy,
    network_capacity_error,
    network_weight_error,
    relay_capacity_error_means,
    relay_weight_error_means,
    relative_std_means,
)
from repro.metrics.archive import MetricsArchive
from repro.metrics.datagen import ArchiveGenParams, generate_archive
from repro.metrics.speedtest import SpeedTestParams, run_speed_test_experiment

__all__ = [
    "ArchiveGenParams",
    "MetricsArchive",
    "SpeedTestParams",
    "capacity_proxy",
    "generate_archive",
    "network_capacity_error",
    "network_weight_error",
    "relay_capacity_error_means",
    "relay_weight_error_means",
    "relative_std_means",
    "run_speed_test_experiment",
]
