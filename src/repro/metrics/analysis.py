"""Equations 1-7 of the paper's §3 / Appendix A analysis.

All functions operate on :class:`repro.metrics.archive.MetricsArchive`
arrays. Period lengths ``p`` are given in hours (the archive's native
granularity); the paper's day/week/month/year correspond to
24 / 168 / 720 / 8760.

- Eq 1: ``C(r,t,p) = max(A(r,t,p))`` -- the true-capacity proxy;
- Eq 2: ``RCE(r,t,p) = 1 - A(r,t)/C(r,t,p)`` -- relay capacity error;
- Eq 3: ``NCE(t,p) = 1 - sum_r A(r,t) / sum_r C(r,t,p)``;
- Eq 4: ``Cbar(r,t,p) = C/sum_s C`` -- normalized capacity;
- Eq 5: ``RWE(r,t,p) = W(r,t)/Cbar(r,t,p)`` -- relay weight error;
- Eq 6: ``NWE(t,p) = 1/2 sum_r |W - Cbar|`` -- total variation distance;
- Eq 7: ``RSD(V) = stdev(V)/mean(V)`` -- relative standard deviation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.archive import MetricsArchive

#: Paper period lengths, hours.
PERIODS_HOURS = {"day": 24, "week": 168, "month": 720, "year": 8760}


def _trailing_max_exact(values: np.ndarray, window: int) -> np.ndarray:
    """Per-row max over the trailing ``window`` samples (inclusive).

    The first ``window - 1`` columns use an expanding window (max over
    what exists so far), matching the paper's treatment of archive edges.

    Implemented with the van Herk / Gil-Werman two-pass block algorithm:
    O(n) time and memory per row regardless of window size (a year-long
    window over an 11-year archive would otherwise need n x window
    scratch space).
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    n = values.shape[-1]
    window = min(window, n)
    if window == 1:
        return values.copy()

    # Pad the front so every output index has a full (virtual) window,
    # and the back so the length is a multiple of the window.
    front = window - 1
    total = front + n
    back = (-total) % window
    padded = np.concatenate(
        [
            np.full(values.shape[:-1] + (front,), -np.inf),
            values,
            np.full(values.shape[:-1] + (back,), -np.inf),
        ],
        axis=-1,
    )
    blocks = padded.reshape(values.shape[:-1] + (-1, window))
    # Prefix max within each block, and suffix max within each block.
    prefix = np.maximum.accumulate(blocks, axis=-1).reshape(
        values.shape[:-1] + (-1,)
    )
    suffix = np.maximum.accumulate(blocks[..., ::-1], axis=-1)[..., ::-1]
    suffix = suffix.reshape(values.shape[:-1] + (-1,))
    # Window ending at padded index j spans [j - window + 1, j]: its max is
    # max(suffix at the window start, prefix at the window end).
    ends = np.arange(front, front + n)
    starts = ends - window + 1
    return np.maximum(suffix[..., starts], prefix[..., ends])


def capacity_proxy(archive: MetricsArchive, period_hours: int) -> np.ndarray:
    """Eq 1: C(r,t,p) = max advertised bandwidth over the trailing period.

    Offline hours contribute nothing; a relay with no published value in
    the window gets NaN.
    """
    adv = archive.masked_advertised()
    filled = np.where(np.isnan(adv), -np.inf, adv)
    proxy = _trailing_max_exact(filled, period_hours)
    proxy[np.isinf(proxy)] = np.nan
    return proxy


def relay_capacity_error(
    archive: MetricsArchive, period_hours: int
) -> np.ndarray:
    """Eq 2 per (relay, hour): 1 - A(r,t)/C(r,t,p); NaN where undefined."""
    adv = archive.masked_advertised()
    proxy = capacity_proxy(archive, period_hours)
    with np.errstate(invalid="ignore", divide="ignore"):
        error = 1.0 - adv / proxy
    error[~np.isfinite(error)] = np.nan
    return error


def relay_capacity_error_means(
    archive: MetricsArchive, period_hours: int, warmup_hours: int | None = None
) -> np.ndarray:
    """Figure 1's statistic: mean RCE per relay over all hours.

    ``warmup_hours`` drops the initial stretch where the trailing window
    has little data (the paper starts its means a year into the archive).
    """
    error = relay_capacity_error(archive, period_hours)
    start = period_hours if warmup_hours is None else warmup_hours
    start = min(start, max(0, error.shape[1] - 1))
    with np.errstate(invalid="ignore"):
        return np.nanmean(error[:, start:], axis=1)


def network_capacity_error(
    archive: MetricsArchive, period_hours: int
) -> np.ndarray:
    """Eq 3 per hour: 1 - sum A(r,t) / sum C(r,t,p) over online relays."""
    adv = archive.masked_advertised()
    proxy = capacity_proxy(archive, period_hours)
    both = ~np.isnan(adv) & ~np.isnan(proxy)
    adv_sum = np.where(both, adv, 0.0).sum(axis=0)
    proxy_sum = np.where(both, proxy, 0.0).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        nce = 1.0 - adv_sum / proxy_sum
    nce[~np.isfinite(nce)] = np.nan
    return nce


def normalized_capacity(
    archive: MetricsArchive, period_hours: int
) -> np.ndarray:
    """Eq 4 per (relay, hour): C(r,t,p) / sum_s C(s,t,p)."""
    proxy = capacity_proxy(archive, period_hours)
    valid = ~np.isnan(proxy)
    totals = np.where(valid, proxy, 0.0).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        return proxy / totals


def relay_weight_error(
    archive: MetricsArchive, period_hours: int
) -> np.ndarray:
    """Eq 5 per (relay, hour): W(r,t) / Cbar(r,t,p)."""
    weights = archive.masked_weights()
    cbar = normalized_capacity(archive, period_hours)
    with np.errstate(invalid="ignore", divide="ignore"):
        rwe = weights / cbar
    rwe[~np.isfinite(rwe)] = np.nan
    return rwe


def relay_weight_error_means(
    archive: MetricsArchive, period_hours: int, warmup_hours: int | None = None
) -> np.ndarray:
    """Figure 3's statistic: mean RWE per relay (plot log10 of it)."""
    rwe = relay_weight_error(archive, period_hours)
    start = period_hours if warmup_hours is None else warmup_hours
    start = min(start, max(0, rwe.shape[1] - 1))
    with np.errstate(invalid="ignore"):
        return np.nanmean(rwe[:, start:], axis=1)


def network_weight_error(
    archive: MetricsArchive,
    period_hours: int | None = None,
    true_capacity: np.ndarray | None = None,
) -> np.ndarray:
    """Eq 6 per hour: total variation distance between W and Cbar.

    With ``true_capacity`` given (synthetic archives / Figure 5), the
    normalized *true* capacities are used instead of the max-proxy.
    """
    weights = archive.masked_weights()
    if true_capacity is not None:
        caps = np.broadcast_to(
            true_capacity[:, None], weights.shape
        ).astype(float).copy()
        caps[~archive.presence] = np.nan
        totals = np.where(archive.presence, caps, 0.0).sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            cbar = caps / totals
    else:
        if period_hours is None:
            raise ConfigurationError(
                "need period_hours or explicit true capacities"
            )
        cbar = normalized_capacity(archive, period_hours)
    both = ~np.isnan(weights) & ~np.isnan(cbar)
    # Renormalise both distributions over the common support so the TVD
    # is well-defined hour by hour.
    w = np.where(both, weights, 0.0)
    c = np.where(both, cbar, 0.0)
    w_tot = w.sum(axis=0)
    c_tot = c.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        w = w / w_tot
        c = c / c_tot
    nwe = 0.5 * np.abs(w - c).sum(axis=0)
    nwe[(w_tot <= 0) | (c_tot <= 0)] = np.nan
    return nwe


def relative_std(values: np.ndarray) -> float:
    """Eq 7: stdev(V)/mean(V) for one sequence (NaNs ignored)."""
    finite = values[np.isfinite(values)]
    if finite.size < 2:
        return np.nan
    mean = finite.mean()
    if mean == 0:
        return np.nan
    return float(finite.std(ddof=0) / mean)


def relative_std_means(
    series: np.ndarray, period_hours: int, sample_every: int = 24
) -> np.ndarray:
    """Appendix A statistic: per-relay mean of trailing-window RSDs.

    ``series`` is [relay, hour] (advertised bandwidths for Fig 10a,
    normalized weights for Fig 10b). For tractability the RSD is
    evaluated at every ``sample_every`` hours and averaged; rolling
    mean/std are computed exactly with uniform filters.
    """
    filled = np.where(np.isfinite(series), series, 0.0)
    count = np.isfinite(series).astype(float)
    window = min(period_hours, series.shape[1])
    sum_vals = _trailing_sum(filled, window)
    sum_counts = _trailing_sum(count, window)
    sum_sq = _trailing_sum(filled ** 2, window)
    with np.errstate(invalid="ignore", divide="ignore"):
        mu = sum_vals / sum_counts
        ex2 = sum_sq / sum_counts
        var = np.maximum(0.0, ex2 - mu ** 2)
        rsd = np.sqrt(var) / mu
    rsd[(sum_counts < 2) | ~np.isfinite(rsd)] = np.nan
    start = min(window, max(0, rsd.shape[1] - 1))
    sampled = rsd[:, start::sample_every]
    with np.errstate(invalid="ignore"):
        return np.nanmean(sampled, axis=1)


def _trailing_sum(values: np.ndarray, window: int) -> np.ndarray:
    """Exact trailing-window sum via cumulative sums."""
    cumulative = np.cumsum(values, axis=-1)
    out = cumulative.copy()
    out[..., window:] = cumulative[..., window:] - cumulative[..., :-window]
    return out
