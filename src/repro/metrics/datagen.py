"""Synthetic Tor metrics archive generator.

The real analysis (paper §3) runs over 11 years of archived descriptors
and consensuses, which are not available offline. This generator rebuilds
the *mechanism* that produces the paper's error structure, so the same
analysis code reproduces its qualitative results:

- relays have fixed true capacities (long-tailed) and are persistently
  under-utilised: hourly demand routed to a relay follows its consensus
  weight, and total demand is below total capacity;
- a relay's *observed bandwidth* is the max 10-second throughput over the
  last 5 days (modelled as the max over recent hourly peaks, where a
  peak is the hourly mean times a burst factor >= 1);
- descriptors publish every 18 hours (staggered per relay), so the
  advertised bandwidth is a lagged step function;
- consensus weights follow TorFlow: advertised bandwidth times a noisy
  measured-speed ratio -- closing the under-utilisation feedback loop;
- a fraction of relays set rate limits below their demand and therefore
  show *zero* capacity error (the paper finds ~15% of relays error-free);
- relays churn (join/leave), and total demand grows over the archive
  (the paper's §3.3 observation that error shrank as capacity growth
  outpaced load growth is driven by this knob).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.archive import MetricsArchive
from repro.rng import fork_numpy
from repro.units import mbit

#: Observed-bandwidth memory, hours (5 days).
OBSERVED_MEMORY_HOURS = 120
#: Descriptor publication interval, hours.
PUBLISH_INTERVAL_HOURS = 18


@dataclass(frozen=True)
class ArchiveGenParams:
    """Generator knobs; defaults are calibrated against paper §3 numbers."""

    n_relays: int = 250
    n_days: int = 400
    seed: int = 0
    #: Network-wide demand as a fraction of total capacity at t=0.
    initial_utilization: float = 0.26
    #: Fractional demand growth over the archive.
    demand_growth: float = 0.6
    #: Hourly lognormal sigma of per-relay load fluctuation (light-tailed:
    #: ordinary hours stay near the relay's typical load).
    burstiness_sigma: float = 0.10
    #: Half-normal sigma of the 10s-peak vs hourly-mean factor (>= 1).
    peak_sigma: float = 0.05
    #: Per-relay per-hour probability of a demand surge that pushes the
    #: relay toward capacity (rare: drives the growth of the capacity
    #: proxy over longer windows, i.e. the paper's error-vs-period shape).
    surge_probability: float = 0.0015
    #: Surge 10s-peaks land uniformly in this fraction-of-capacity range.
    surge_low: float = 0.70
    surge_high: float = 1.0
    #: Popularity grows with capacity^popularity_exponent: big relays are
    #: better utilised (guard/exit flags, stability), which is what makes
    #: small relays systematically under-weighted (paper Fig 3: >85%).
    popularity_exponent: float = 0.08
    #: TorFlow's measured-speed ratio additionally favours big relays
    #: (their probe downloads run faster); speed ~ capacity^this.
    ratio_capacity_exponent: float = 0.40
    #: Demand responds sublinearly to weight (congestion on over-weighted
    #: relays pushes elastic client load away): share ~ weight^this.
    demand_exponent: float = 1.0
    #: Lognormal sigma of TorFlow's measured-speed ratio noise.
    weight_noise_sigma: float = 0.45
    #: Hours between re-draws of the weight ratio noise (TorFlow's
    #: measurement cadence).
    weight_noise_refresh_hours: int = 24
    #: Consensus weights lag the advertised bandwidths they are built
    #: from: TorFlow aggregates measurements over days before weights
    #: reach a consensus. This lag is what makes the §3.4 flood raise the
    #: *weight error* -- capacity estimates improve before weights do.
    weight_lag_hours: int = 36
    #: Fraction of relays whose rate limit binds (zero capacity error).
    rate_limited_fraction: float = 0.15
    #: Fraction of relays that join mid-archive.
    late_join_fraction: float = 0.3
    #: Fraction of relays that leave before the end.
    early_leave_fraction: float = 0.2
    #: Capacity distribution (clipped lognormal), bytes/sec domain below.
    capacity_median_bits: float = mbit(30)
    capacity_sigma: float = 1.5
    capacity_max_bits: float = mbit(1000)
    #: Optional §3.4 speed-test flood injection: starting hour (None = no
    #: flood), duration, fraction of relays successfully flooded (the
    #: paper measured 4,867 of ~7,000 and timed out on 2,132), and the
    #: fraction of true capacity a flooded relay demonstrates.
    flood_start_hour: int | None = None
    flood_duration_hours: int = 51
    flood_success_fraction: float = 0.70
    flood_capacity_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.n_relays <= 1:
            raise ConfigurationError("need at least two relays")
        if self.n_days <= 1:
            raise ConfigurationError("need at least two days")


def generate_archive(params: ArchiveGenParams | None = None) -> MetricsArchive:
    """Generate a synthetic archive (see module docstring for the model)."""
    params = params or ArchiveGenParams()
    rng = fork_numpy(params.seed, "metrics-archive")
    n = params.n_relays
    hours = params.n_days * 24

    # --- Static relay population -----------------------------------------
    capacity_bits = np.exp(
        rng.normal(np.log(params.capacity_median_bits), params.capacity_sigma, n)
    )
    capacity_bits = np.clip(capacity_bits, mbit(0.2), params.capacity_max_bits)
    capacity = capacity_bits / 8.0  # bytes/sec, the archive's native unit

    rate_limited = rng.random(n) < params.rate_limited_fraction
    # Binding limits sit well below what load will reach.
    rate_limit = np.where(
        rate_limited, capacity * rng.uniform(0.15, 0.5, n), np.inf
    )

    join_hour = np.zeros(n, dtype=int)
    late = rng.random(n) < params.late_join_fraction
    join_hour[late] = rng.integers(0, hours // 2, late.sum())
    leave_hour = np.full(n, hours, dtype=int)
    early = rng.random(n) < params.early_leave_fraction
    leave_hour[early] = rng.integers(hours // 2, hours, early.sum())
    leave_hour = np.maximum(leave_hour, join_hour + 24)

    #: Static popularity skew (guard status, exit policy, geography),
    #: correlated with capacity.
    popularity = np.exp(rng.normal(0.0, 0.35, n)) * (
        capacity / np.median(capacity)
    ) ** params.popularity_exponent
    publish_offset = rng.integers(0, PUBLISH_INTERVAL_HOURS, n)

    # Drawn unconditionally so enabling the flood does not shift the RNG
    # stream for the rest of the generation (the quiet and flooded runs of
    # one seed stay identical outside the flood's effects).
    flood_draws = rng.random(n)
    flooded_relays = (
        flood_draws < params.flood_success_fraction
        if params.flood_start_hour is not None
        else np.zeros(n, dtype=bool)
    )

    # --- State -------------------------------------------------------------
    advertised = np.zeros((n, hours))
    weights = np.zeros((n, hours))
    presence = np.zeros((n, hours), dtype=bool)
    peak_buffer = np.zeros((n, OBSERVED_MEMORY_HOURS))
    buffer_pos = 0
    current_advertised = capacity * params.initial_utilization * rng.uniform(
        0.3, 1.0, n
    )
    current_advertised = np.minimum(current_advertised, rate_limit)
    ratio_bias = (capacity / np.median(capacity)) ** params.ratio_capacity_exponent
    ratio_noise = ratio_bias * np.exp(
        rng.normal(0.0, params.weight_noise_sigma, n)
    )
    current_weights = np.maximum(current_advertised * ratio_noise, 1e-9)

    total_capacity = capacity.sum()

    advertised_history: deque = deque(maxlen=max(1, params.weight_lag_hours))

    for t in range(hours):
        online = (join_hour <= t) & (t < leave_hour)
        presence[:, t] = online
        if not online.any():
            continue

        # Demand routed to each relay: proportional to consensus weight.
        growth = 1.0 + params.demand_growth * (t / hours)
        total_demand = (
            total_capacity * params.initial_utilization * growth
        )
        w = np.where(online, current_weights, 0.0) ** params.demand_exponent
        w_total = w.sum()
        share = w / w_total if w_total > 0 else np.zeros(n)

        burst = np.exp(
            rng.normal(0.0, params.burstiness_sigma, n)
        ) * popularity
        hourly_throughput = np.minimum(
            capacity, total_demand * share * burst
        )
        hourly_throughput = np.minimum(hourly_throughput, rate_limit)
        peak = np.minimum(
            np.minimum(capacity, rate_limit),
            hourly_throughput
            * (1.0 + np.abs(rng.normal(0.0, params.peak_sigma, n))),
        )
        # Rare demand surges briefly push a relay toward its capacity;
        # these are what the longer-window capacity proxy catches.
        surging = rng.random(n) < params.surge_probability
        if surging.any():
            surge_peak = np.minimum(capacity, rate_limit) * rng.uniform(
                params.surge_low, params.surge_high, n
            )
            peak = np.where(surging, np.maximum(peak, surge_peak), peak)
        peak = np.where(online, peak, 0.0)

        # §3.4 speed-test flood: flooded relays demonstrate near-capacity
        # 10-second throughput, which enters their observed-bw history.
        if params.flood_start_hour is not None and (
            params.flood_start_hour
            <= t
            < params.flood_start_hour + params.flood_duration_hours
        ):
            flood_peak = (
                np.minimum(capacity, rate_limit)
                * params.flood_capacity_fraction
                * rng.uniform(0.95, 1.02, n)
            )
            peak = np.where(
                online & flooded_relays, np.maximum(peak, flood_peak), peak
            )

        # Observed bandwidth: max over the 5-day peak buffer.
        peak_buffer[:, buffer_pos] = peak
        buffer_pos = (buffer_pos + 1) % OBSERVED_MEMORY_HOURS
        observed = peak_buffer.max(axis=1)

        # Descriptor publication (staggered 18 h cadence).
        publishing = online & ((t + publish_offset) % PUBLISH_INTERVAL_HOURS == 0)
        fresh = np.minimum(observed, rate_limit)
        current_advertised = np.where(publishing, fresh, current_advertised)
        # Relays joining right now publish their first descriptor.
        joining = online & (join_hour == t)
        current_advertised = np.where(
            joining, np.minimum(observed, rate_limit), current_advertised
        )
        advertised[:, t] = np.where(online, current_advertised, 0.0)

        # TorFlow weights: *lagged* advertised x measured-speed ratio
        # (refreshed on the scanner cadence). The lag models TorFlow's
        # multi-day measurement pipeline.
        if t % params.weight_noise_refresh_hours == 0:
            ratio_noise = ratio_bias * np.exp(
                rng.normal(0.0, params.weight_noise_sigma, n)
            )
        advertised_history.append(current_advertised.copy())
        lagged_advertised = advertised_history[0]
        raw = np.where(online, lagged_advertised * ratio_noise, 0.0)
        raw_total = raw.sum()
        if raw_total > 0:
            weights[:, t] = raw / raw_total
            current_weights = np.maximum(raw, 1e-9)

    return MetricsArchive(
        relays=[f"relay{i:05d}" for i in range(n)],
        advertised=advertised,
        weights=weights,
        presence=presence,
        true_capacity=capacity,
        extra={
            "rate_limit": rate_limit,
            "join_hour": join_hour,
            "leave_hour": leave_hour,
            "params": params,
        },
    )
