"""The §3.4 relay speed-test experiment (Figure 5).

The authors flooded every Tor relay with SPEEDTEST echo traffic for 20
seconds each over a 51-hour window. The floods pushed relays' observed
bandwidths to (near) capacity; as 18-hour descriptor publications picked
the new values up, the network's estimated capacity rose by ~200 Gbit/s
(~50%), and the network weight error (Eq 6, against the better capacity
estimates) rose 5-10% before TorFlow's feedback corrected weights. After
the 5-day observed-bandwidth memory expired, estimates decayed back.

This module replays the experiment inside the synthetic-archive model and
reports the same time series Figure 5 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.analysis import network_weight_error
from repro.metrics.archive import MetricsArchive
from repro.metrics.datagen import ArchiveGenParams, generate_archive


@dataclass(frozen=True)
class SpeedTestParams:
    """Configuration for the flood-experiment replay."""

    base: ArchiveGenParams = field(
        default_factory=lambda: ArchiveGenParams(n_relays=200, n_days=40)
    )
    #: Hour at which the 51-hour flood window starts.
    flood_start_hour: int = 20 * 24
    flood_duration_hours: int = 51
    flood_success_fraction: float = 0.70
    flood_capacity_fraction: float = 0.95


@dataclass
class SpeedTestResult:
    """Figure 5's series plus headline statistics."""

    archive: MetricsArchive
    #: Sum of advertised bandwidths per hour (bytes/sec).
    estimated_capacity: np.ndarray
    #: Eq 6 network weight error per hour, computed (as the paper does)
    #: against the archive's own capacity proxy -- the flood improves the
    #: proxy, which is what makes the lagging weights look worse.
    weight_error: np.ndarray
    flood_start_hour: int
    flood_end_hour: int

    def _window(self, lo: int, hi: int) -> slice:
        return slice(max(0, lo), min(len(self.estimated_capacity), hi))

    @property
    def capacity_before(self) -> float:
        """Median estimated capacity over the 3 days before the flood."""
        w = self._window(self.flood_start_hour - 72, self.flood_start_hour)
        return float(np.median(self.estimated_capacity[w]))

    @property
    def capacity_peak(self) -> float:
        """Peak estimated capacity in the flood window + descriptor lag."""
        w = self._window(self.flood_start_hour, self.flood_end_hour + 48)
        return float(self.estimated_capacity[w].max())

    @property
    def capacity_increase_fraction(self) -> float:
        """The paper's headline: ~0.5 (50% underestimation discovered)."""
        before = self.capacity_before
        if before <= 0:
            return 0.0
        return self.capacity_peak / before - 1.0

    @property
    def weight_error_before(self) -> float:
        w = self._window(self.flood_start_hour - 72, self.flood_start_hour)
        return float(np.nanmedian(self.weight_error[w]))

    @property
    def weight_error_peak(self) -> float:
        w = self._window(self.flood_start_hour, self.flood_end_hour + 48)
        return float(np.nanmax(self.weight_error[w]))

    @property
    def weight_error_increase(self) -> float:
        """Paper: between +5% and +10% (absolute) during the test."""
        return self.weight_error_peak - self.weight_error_before

    @property
    def recovered(self) -> bool:
        """Whether estimates decayed back after the 5-day memory expired."""
        tail = self._window(
            self.flood_end_hour + 120 + 36, len(self.estimated_capacity)
        )
        if tail.stop - tail.start < 12:
            return False
        after = float(np.median(self.estimated_capacity[tail]))
        return after < self.capacity_peak * 0.85


def run_speed_test_experiment(
    params: SpeedTestParams | None = None,
) -> SpeedTestResult:
    """Replay the §3.4 experiment and return Figure 5's series."""
    params = params or SpeedTestParams()
    base = params.base
    gen_params = ArchiveGenParams(
        **{
            **base.__dict__,
            "flood_start_hour": params.flood_start_hour,
            "flood_duration_hours": params.flood_duration_hours,
            "flood_success_fraction": params.flood_success_fraction,
            "flood_capacity_fraction": params.flood_capacity_fraction,
        }
    )
    archive = generate_archive(gen_params)
    estimated = archive.network_advertised_total()
    weight_error = network_weight_error(archive, period_hours=720)
    return SpeedTestResult(
        archive=archive,
        estimated_capacity=estimated,
        weight_error=weight_error,
        flood_start_hour=params.flood_start_hour,
        flood_end_hour=params.flood_start_hour + params.flood_duration_hours,
    )
