"""FlashFlow reproduction: a secure speed test for Tor.

This package reproduces *FlashFlow: A Secure Speed Test for Tor* (Traudt,
Jansen, Johnson -- ICDCS 2021) end to end:

- :mod:`repro.core` -- FlashFlow itself: the secure, active, team-based
  relay capacity measurement protocol;
- :mod:`repro.netsim` -- the network substrate (hosts, TCP/UDP fluid
  models, max-min fairness, iPerf);
- :mod:`repro.tornet` -- the Tor substrate (cells, relays, schedulers,
  descriptors, consensuses, authorities, path selection);
- :mod:`repro.torflow` -- the TorFlow / EigenSpeed / PeerFlow baselines;
- :mod:`repro.metrics` -- the §3 Tor-metrics analysis pipeline and its
  synthetic archive generator;
- :mod:`repro.shadow` -- the flow-level whole-network simulator behind the
  paper's Shadow experiments (§7);
- :mod:`repro.attacks` -- adversarial relay behaviours and the security
  analysis (§5);
- :mod:`repro.api` -- the scenario-driven front door: describe any
  workload as a ``Scenario`` + ``ExecutionConfig`` and run it as a
  ``Campaign`` with streaming observers.

Quickstart (see also ``python -m repro.api --list``)::

    from repro.api import Campaign, ExecutionConfig, Scenario

    report = Campaign(Scenario(), ExecutionConfig()).run()
    print(report.median_error_vs_truth())

or, for one relay with the low-level protocol objects::

    from repro import quick_team
    from repro.tornet import Relay
    from repro.units import mbit

    auth = quick_team()
    relay = Relay.with_capacity("example", mbit(250))
    estimate = auth.measure_relay(relay)
    print(estimate.capacity / 1e6, "Mbit/s")
"""

from repro.core import FlashFlowParams, FlashFlowAuthority, Measurer
from repro.netsim import Host, NetworkModel
from repro.units import gbit, mbit

__version__ = "1.0.0"

__all__ = [
    "FlashFlowAuthority",
    "FlashFlowParams",
    "Host",
    "Measurer",
    "NetworkModel",
    "quick_team",
    "__version__",
]


def quick_team(
    n_measurers: int = 3,
    capacity_each: float = gbit(1.0),
    params: FlashFlowParams | None = None,
    seed: int = 0,
) -> FlashFlowAuthority:
    """Build the paper's reference deployment: 3 x 1 Gbit/s measurers.

    Measurer capacities are taken as given (as if already measured via
    iPerf); pass a :class:`NetworkModel` -backed team for the full
    measure-the-measurers flow.
    """
    team = []
    for index in range(n_measurers):
        host = Host(
            name=f"measurer{index}",
            link_capacity=capacity_each,
            cpu_cores=4,
        )
        team.append(
            Measurer(
                name=f"measurer{index}",
                host=host,
                measured_capacity=capacity_each,
            )
        )
    return FlashFlowAuthority(
        name="bwauth0", team=team, params=params, seed=seed
    )
