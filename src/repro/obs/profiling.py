"""Profiling hooks: opt-in cProfile capture around a whole run.

Tracing answers *which stage* took the time; profiling answers *which
function*. :func:`maybe_profile` wraps a block in ``cProfile`` when
given a path and is a transparent no-op otherwise, so call sites
(``python -m repro.api --profile``, ``scripts/bench.py --profile``)
thread one optional argument instead of branching:

    with maybe_profile(args.profile):
        report = campaign.run()

The dump is a standard pstats file -- load it with ``python -m pstats
PATH`` or ``snakeviz``. A sibling ``PATH.txt`` with the top
cumulative-time rows is written alongside for a no-tooling first look.
"""

from __future__ import annotations

import pathlib
from contextlib import contextmanager
from typing import Iterator

__all__ = ["maybe_profile"]


@contextmanager
def maybe_profile(
    path=None, sort: str = "cumulative", limit: int = 40
) -> Iterator:
    """Profile the block into ``path`` (pstats); no-op when path is None."""
    if not path:
        yield None
        return
    import cProfile
    import io
    import pstats

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))
        text = io.StringIO()
        pstats.Stats(profiler, stream=text).sort_stats(sort).print_stats(limit)
        path.with_suffix(path.suffix + ".txt").write_text(text.getvalue())
