"""``repro.obs`` -- tracing, metrics, and profiling for the whole stack.

A zero-dependency observability subsystem with three pillars:

- **tracer** (:mod:`repro.obs.trace`): hierarchical spans (``campaign >
  period > round > compile/execute/settle``, per-backend-chunk and
  shadow-churn children) with wall/CPU time and attached attributes.
  The ambient tracer defaults to the no-op :data:`NULL_TRACER`;
  ``ExecutionConfig(trace=PATH)`` (or ``python -m repro.api --trace``)
  installs a recording tracer streaming to a JSONL file.
- **metrics** (:mod:`repro.obs.metrics`): counters / gauges /
  histograms at the choke points -- rounds retried, stateful-path
  fallbacks, shm allocations and fallbacks, pool rebuilds, stream
  queue depth -- plus :func:`warn_once` so silent degradations surface
  exactly once per process.
- **exporters** (:mod:`repro.obs.export`): the incremental
  ``flashflow-trace/1`` JSONL writer with a run manifest (seed,
  scenario, backend, cpu_count, git rev) and a plain-text summary
  renderer; :mod:`repro.obs.validate` checks emitted files (CI smoke).
  :mod:`repro.obs.profiling` adds opt-in cProfile capture.

Tracing never perturbs results (spans read clocks, not RNGs; the
bit-identity oracle suites run traced), and the disabled path is a
no-op fast path: instrumentation sits at round/chunk granularity and
the null tracer allocates nothing. This event/metrics schema is the
substrate the continuous daemon (ROADMAP item 1) and campaign archive
(item 4) will consume.
"""

from repro.obs.export import (
    TRACE_SCHEMA,
    JsonlTraceWriter,
    git_revision,
    render_summary,
    run_manifest,
)
from repro.obs.metrics import (
    Counter,
    DegradationWarning,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    reset_warnings,
    warn_once,
)
from repro.obs.profiling import maybe_profile
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    use_tracer,
)
__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "Counter",
    "DegradationWarning",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "NullSpan",
    "NullTracer",
    "Span",
    "TraceValidationError",
    "Tracer",
    "get_registry",
    "get_tracer",
    "git_revision",
    "maybe_profile",
    "render_summary",
    "reset_registry",
    "reset_warnings",
    "run_manifest",
    "use_tracer",
    "validate_trace",
]


def __getattr__(name):
    # Lazy so ``python -m repro.obs.validate`` doesn't re-import the
    # module it is about to execute (runpy warns about that).
    if name in ("TraceValidationError", "validate_trace"):
        from repro.obs import validate

        return getattr(validate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
