"""Trace exporters: incremental JSONL writer, run manifest, summary text.

The trace file format (``flashflow-trace/1``) is line-delimited JSON,
one record per line, written incrementally so a killed run still leaves
an analyzable prefix:

- line 1 is always the **manifest** (``type: "manifest"``): schema
  name, run id, scenario name and seed, execution knobs (backend,
  shards, pipeline, full_simulation), ``cpu_count``, python version,
  and the git revision when available -- everything needed to interpret
  (or reproduce) the run;
- **span** records (``type: "span"``) follow as spans close, children
  before their parents (a span closes before the span that opened it);
  parent ids always refer to earlier-allocated ids, so the file's span
  lines reassemble into a well-formed tree;
- one **metrics** record (``type: "metrics"``) near the end snapshots
  the registry (counters / gauges / histograms);
- the final record is ``type: "end"`` with the total span count, so a
  truncated file is detectable.

This schema is the substrate the ROADMAP's continuous daemon (item 1)
and campaign archive (item 4) consume: durable, append-only, parseable
line by line. :func:`repro.obs.validate.validate_trace` checks all of
the above and backs the CI smoke job.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import time
import uuid

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "TRACE_SCHEMA",
    "JsonlTraceWriter",
    "git_revision",
    "render_summary",
    "run_manifest",
]

#: Schema tag written into every manifest (bump on breaking changes).
TRACE_SCHEMA = "flashflow-trace/1"


def git_revision() -> str | None:
    """The repo's HEAD revision, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_manifest(
    scenario_name: str | None = None,
    seed: int | None = None,
    backend: str | None = None,
    **extra,
) -> dict:
    """The ``type: "manifest"`` record for one traced run.

    ``extra`` keys (shards, pipeline, full_simulation, periods, ...)
    are merged in verbatim; provenance fields (cpu_count, python,
    git_rev, generated_unix, run_id) are always present.
    """
    manifest = {
        "type": "manifest",
        "schema": TRACE_SCHEMA,
        "run_id": uuid.uuid4().hex,
        "generated_unix": int(time.time()),
        "scenario": scenario_name,
        "seed": seed,
        "backend": backend,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "git_rev": git_revision(),
    }
    manifest.update(extra)
    return manifest


class JsonlTraceWriter:
    """Incremental JSONL sink for a :class:`repro.obs.trace.Tracer`.

    Writes the manifest on open, one span record per closed span, and
    (via :meth:`finish`) the metrics snapshot plus the ``end`` record.
    Each line is flushed as written so a killed process leaves a valid
    prefix; double-``finish`` and write-after-close are no-ops rather
    than errors (the campaign generator's finally block may race a
    caller's explicit close).
    """

    def __init__(self, path, manifest: dict | None = None):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self._spans_written = 0
        self._finished = False
        self._write(manifest if manifest is not None else run_manifest())

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, default=repr) + "\n")
        self._fh.flush()

    def write_span(self, span: Span) -> None:
        if self._finished:
            return
        self._write(span.to_dict())
        self._spans_written += 1

    def finish(
        self,
        registry: MetricsRegistry | None = None,
        summary: dict | None = None,
    ) -> None:
        if self._finished:
            return
        self._finished = True
        if registry is not None:
            self._write({"type": "metrics", **registry.snapshot()})
        record = {"type": "end", "spans": self._spans_written}
        if summary:
            record["summary"] = summary
        self._write(record)
        self._fh.close()


def render_summary(
    tracer: Tracer, registry: MetricsRegistry | None = None
) -> str:
    """A plain-text where-did-time-go table for one recorded trace.

    One row per span name (count, total wall, total CPU, mean wall),
    widest wall first, followed by the registry's non-zero counters --
    the human-readable companion to the JSONL file, printed by
    ``python -m repro.api --metrics``.
    """
    rows: dict[str, list[float]] = {}
    for span in tracer.spans:
        row = rows.setdefault(span.name, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.wall_seconds
        row[2] += span.cpu_seconds
    lines = [
        f"{'span':28s} {'count':>7s} {'wall_s':>10s} {'cpu_s':>10s} {'mean_ms':>9s}"
    ]
    for name, (count, wall, cpu) in sorted(
        rows.items(), key=lambda kv: -kv[1][1]
    ):
        lines.append(
            f"{name:28s} {count:7d} {wall:10.3f} {cpu:10.3f} "
            f"{1000.0 * wall / count:9.2f}"
        )
    if registry is not None:
        counters = {
            name: c.value
            for name, c in sorted(registry.counters.items())
            if c.value
        }
        if counters:
            lines.append("")
            lines.append(f"{'counter':44s} {'value':>10s}")
            for name, value in counters.items():
                lines.append(f"{name:44s} {value:10d}")
        gauges = {
            name: g for name, g in sorted(registry.gauges.items())
        }
        if gauges:
            lines.append("")
            lines.append(f"{'gauge':44s} {'value':>10s} {'max':>10s}")
            for name, g in gauges.items():
                lines.append(f"{name:44s} {g.value:10g} {g.max_value:10g}")
    return "\n".join(lines)
