"""Hierarchical tracing spans with a zero-overhead disabled path.

A :class:`Tracer` produces a tree of :class:`Span` records --
``campaign > period > round > compile/execute/settle``, per-backend
chunk children, shadow-kernel churn spans -- each carrying wall *and*
CPU time plus free-form attributes (slot counts, shard ids, backend
name, transport). Instrumentation sits at round/chunk granularity,
never inside the per-second numpy walks, so a recording tracer costs a
handful of span objects per campaign round.

When tracing is off the ambient tracer is the module-level
:data:`NULL_TRACER`: ``span()`` returns the shared :data:`NULL_SPAN`
singleton (no allocation, no bookkeeping), so instrumented code pays
one attribute lookup and one no-op call per choke point. Tracing never
perturbs results either way -- spans only read clocks, never RNGs --
which is what lets the bit-identity oracle suites run with tracing on.

Parenting: each tracer keeps a per-thread stack of open spans; a span
opened while another is open on the same thread becomes its child.
Worker threads (the ``thread`` backend's chunk walks) have empty
stacks, so they parent explicitly via ``span(..., parent_id=...)``.
Worker *processes* see the module-global null tracer; their chunks are
traced from the parent side (submit-to-harvest spans).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "use_tracer",
]


class NullSpan:
    """The shared no-op span: enter/exit/set do nothing, allocate nothing."""

    __slots__ = ()

    #: Discriminates the null span from recording spans without isinstance.
    recording = False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        return self


#: The singleton every ``NullTracer.span()`` call returns.
NULL_SPAN = NullSpan()


class NullTracer:
    """The disabled-path tracer: every span is :data:`NULL_SPAN`.

    ``span()`` ignores its arguments and returns the shared singleton,
    so the disabled path performs no allocation and records nothing
    (``spans`` is always the empty tuple -- the overhead guard test
    pins span count == 0 after a traced-off campaign).
    """

    __slots__ = ()

    enabled = False
    spans: tuple = ()

    def span(self, name, parent_id=None, **attrs) -> NullSpan:
        return NULL_SPAN

    def current_span_id(self) -> None:
        return None

    def finish(self, registry=None) -> None:
        return None


#: The module-level null tracer installed by default.
NULL_TRACER = NullTracer()


class Span:
    """One recorded operation: name, parent, wall/CPU time, attributes.

    Spans are context managers; timing runs from ``__enter__`` to
    ``__exit__`` (wall via ``perf_counter``, CPU via ``thread_time`` so
    worker-thread spans report their own thread's CPU share). Closed
    spans are appended to the tracer (and streamed to its sink) in
    close order, so children precede parents in a trace file.
    """

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "start_unix",
        "wall_seconds",
        "cpu_seconds",
        "_wall0",
        "_cpu0",
    )

    recording = True

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_unix = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes after the span opened (e.g. counts known late)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start_unix = time.time()
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.thread_time() - self._cpu0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._pop(self)
        return False

    def to_dict(self) -> dict:
        """The span's JSONL record (the ``type: "span"`` line schema)."""
        record = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_unix": round(self.start_unix, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """A recording tracer: hands out spans, collects them on close.

    ``sink`` is an optional incremental writer (duck-typed:
    ``write_span(span)`` per closed span plus ``finish(registry,
    summary)`` -- see :class:`repro.obs.export.JsonlTraceWriter`); with
    no sink the trace stays in memory (``tracer.spans``), which is what
    the benches use to derive stage breakdowns.
    """

    enabled = True

    def __init__(self, sink=None):
        self.sink = sink
        #: Closed spans in close order (children before their parents).
        self.spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, parent_id: int | None = None, **attrs) -> Span:
        """A new span; enter it (``with``) to start the clocks.

        Parent resolution: an explicit ``parent_id`` wins (worker
        threads use this -- their stacks are empty); otherwise the
        innermost open span on the *calling* thread; otherwise root.
        """
        if parent_id is None:
            stack = getattr(self._local, "stack", None)
            if stack:
                parent_id = stack[-1].span_id
        return Span(self, name, next(self._ids), parent_id, attrs)

    def current_span_id(self) -> int | None:
        """The innermost open span id on this thread, or None.

        Pool dispatchers capture this before fanning out so worker
        threads can parent their chunk spans explicitly (their own
        stacks are empty).
        """
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.spans.append(span)
            if self.sink is not None:
                self.sink.write_span(span)

    # -- aggregation ----------------------------------------------------

    def wall_by_name(self) -> dict[str, float]:
        """Total wall seconds per span name (stage-breakdown helper)."""
        totals: dict[str, float] = {}
        with self._lock:
            for span in self.spans:
                totals[span.name] = (
                    totals.get(span.name, 0.0) + span.wall_seconds
                )
        return totals

    def finish(self, registry=None, summary: dict | None = None) -> None:
        """Flush the sink (metrics snapshot + closing record), if any."""
        if self.sink is not None:
            self.sink.finish(registry=registry, summary=summary)


# ----------------------------------------------------------------------
# The ambient tracer
# ----------------------------------------------------------------------
#
# A plain module global, deliberately *not* a contextvar: the thread
# backend's pool workers must see the same tracer as the campaign
# thread, and ThreadPoolExecutor tasks run in the worker thread's own
# (empty) context. Process-pool workers import the module fresh and see
# the null tracer, which is exactly right -- their chunks are traced
# parent-side.

_current: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The ambient tracer (the null tracer unless a run installed one)."""
    return _current


@contextmanager
def use_tracer(tracer: NullTracer | Tracer) -> Iterator[NullTracer | Tracer]:
    """Install ``tracer`` as the ambient tracer for the block's duration."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
