"""Validator for ``flashflow-trace/1`` JSONL trace files.

Checks everything the schema promises (see
:mod:`repro.obs.export`): every line parses as a JSON object with a
``type``; the first record is a manifest carrying the provenance
fields; span records form a well-formed tree (unique ids, parents
allocated before children, all parents resolvable, at least one root,
non-negative times); a metrics snapshot is present; and the closing
``end`` record's span count matches. CI's obs smoke job runs a canned
scenario with ``--trace`` and pipes the file through this module::

    PYTHONPATH=src python -m repro.obs.validate /tmp/trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["TraceValidationError", "validate_trace"]

#: Manifest keys every trace must carry.
MANIFEST_REQUIRED = (
    "schema", "run_id", "generated_unix", "scenario", "seed", "backend",
    "cpu_count", "python",
)


class TraceValidationError(ValueError):
    """A trace file violated the flashflow-trace/1 schema."""


def _fail(lineno: int, message: str) -> None:
    raise TraceValidationError(f"line {lineno}: {message}")


def validate_trace(path) -> dict:
    """Validate one trace file; returns summary stats or raises.

    The returned dict carries ``spans`` / ``roots`` / ``max_depth`` /
    ``metrics_records`` / ``manifest`` so callers (tests, the CI smoke
    job) can assert on trace shape beyond mere validity.
    """
    path = pathlib.Path(path)
    records: list[tuple[int, dict]] = []
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                _fail(lineno, "blank line in trace")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                _fail(lineno, f"unparseable JSON: {exc}")
            if not isinstance(record, dict) or "type" not in record:
                _fail(lineno, "record is not an object with a 'type'")
            records.append((lineno, record))

    if not records:
        raise TraceValidationError(f"{path}: empty trace")

    lineno, manifest = records[0]
    if manifest["type"] != "manifest":
        _fail(lineno, "first record must be the manifest")
    for key in MANIFEST_REQUIRED:
        if key not in manifest:
            _fail(lineno, f"manifest missing required key {key!r}")
    if manifest["schema"] != "flashflow-trace/1":
        _fail(lineno, f"unknown schema {manifest['schema']!r}")

    spans: dict[int, dict] = {}
    parents: dict[int, int | None] = {}
    metrics_records = 0
    end_record: dict | None = None
    for lineno, record in records[1:]:
        kind = record["type"]
        if kind == "manifest":
            _fail(lineno, "duplicate manifest")
        elif kind == "span":
            for key in ("id", "name", "wall_seconds", "cpu_seconds"):
                if key not in record:
                    _fail(lineno, f"span missing {key!r}")
            span_id = record["id"]
            if not isinstance(span_id, int) or span_id < 1:
                _fail(lineno, f"span id {span_id!r} is not a positive int")
            if span_id in spans:
                _fail(lineno, f"duplicate span id {span_id}")
            parent = record.get("parent")
            if parent is not None:
                if not isinstance(parent, int):
                    _fail(lineno, f"span {span_id} parent {parent!r} not an int")
                if parent >= span_id:
                    # Ids allocate parent-first, so a parent id >= the
                    # child's would mean a cycle or a corrupt tree.
                    _fail(
                        lineno,
                        f"span {span_id} parent {parent} not allocated "
                        f"before the child",
                    )
            if record["wall_seconds"] < 0 or record["cpu_seconds"] < 0:
                _fail(lineno, f"span {span_id} has negative time")
            spans[span_id] = record
            parents[span_id] = parent
        elif kind == "metrics":
            metrics_records += 1
            for key in ("counters", "gauges", "histograms"):
                if key not in record:
                    _fail(lineno, f"metrics record missing {key!r}")
        elif kind == "end":
            if end_record is not None:
                _fail(lineno, "duplicate end record")
            end_record = record
        else:
            _fail(lineno, f"unknown record type {kind!r}")

    roots = []
    for span_id, parent in parents.items():
        if parent is None:
            roots.append(span_id)
        elif parent not in spans:
            raise TraceValidationError(
                f"span {span_id} references unknown parent {parent}"
            )
    if spans and not roots:
        raise TraceValidationError("trace has spans but no root span")
    if metrics_records == 0:
        raise TraceValidationError("trace has no metrics snapshot")
    if end_record is None:
        raise TraceValidationError("trace has no end record (truncated?)")
    if end_record.get("spans") != len(spans):
        raise TraceValidationError(
            f"end record says {end_record.get('spans')} spans, "
            f"file has {len(spans)}"
        )

    def depth(span_id: int) -> int:
        d = 1
        parent = parents[span_id]
        while parent is not None:
            d += 1
            parent = parents[parent]
        return d

    return {
        "manifest": manifest,
        "spans": len(spans),
        "roots": len(roots),
        "max_depth": max((depth(s) for s in spans), default=0),
        "metrics_records": metrics_records,
        "span_names": sorted({r["name"] for r in spans.values()}),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate", description=__doc__
    )
    parser.add_argument("trace", type=pathlib.Path, help="trace JSONL file")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    try:
        stats = validate_trace(args.trace)
    except (TraceValidationError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        manifest = stats["manifest"]
        print(
            f"valid flashflow-trace/1: {stats['spans']} spans "
            f"({stats['roots']} root(s), depth {stats['max_depth']}), "
            f"{stats['metrics_records']} metrics snapshot(s); "
            f"scenario={manifest.get('scenario')!r} "
            f"seed={manifest.get('seed')} backend={manifest.get('backend')}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
