"""A zero-dependency metrics registry: counters, gauges, histograms.

Instrumented at the campaign/kernel choke points -- rounds retried,
specs fallen back to the stateful path, shared-memory allocations and
fallbacks, pool rebuilds, stream queue depth, bytes shipped -- at
round/chunk granularity, never per second, so the always-on cost is a
dict lookup and an integer add per event.

Two registries matter in practice:

- the **global registry** (:func:`get_registry`): the process-wide
  sink the kernel's degradation counters land in (shm fallbacks, pool
  rebuilds). Trace exporters snapshot it into the trace file; tests
  :func:`reset_registry` around assertions.
- **private registries**: :class:`repro.api.events.MetricsObserver`
  and friends each own one, so per-campaign numbers never mix with
  another run's.

:func:`warn_once` is the companion for silent-degradation paths: a
counter says *how often*, the one-shot :class:`DegradationWarning`
says *that it happened at all* without spamming a long-running daemon.
"""

from __future__ import annotations

import threading
import warnings

__all__ = [
    "Counter",
    "DegradationWarning",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "reset_warnings",
    "warn_once",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; the high-water mark is kept alongside."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value


class Histogram:
    """Observed samples with count/sum/min/max plus the raw values.

    Raw samples are retained (observations happen at round granularity,
    so memory is bounded by campaign length); ``samples`` is what lets
    :class:`repro.api.events.TimingObserver` expose its historical
    ``round_seconds`` list straight off the registry.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.samples.append(value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-first-use instrument store, snapshot-able to plain dicts."""

    def __init__(self):
        self._lock = threading.Lock()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.setdefault(name, Histogram(name))
        return h

    def snapshot(self) -> dict:
        """All instruments as plain JSON-serialisable dicts."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max_value}
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": round(h.total, 6),
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": round(h.mean(), 6),
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


#: The process-wide registry kernel degradation counters land in.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The global registry (kernel choke points increment into this)."""
    return _GLOBAL


def reset_registry() -> None:
    """Clear the global registry (test isolation)."""
    _GLOBAL.reset()


class DegradationWarning(RuntimeWarning):
    """A silent-degradation path was taken (shm fallback, pool rebuild)."""


#: Keys already warned about this process (one-shot semantics).
_warned: set[str] = set()
_warned_lock = threading.Lock()


def warn_once(key: str, message: str) -> bool:
    """Emit ``message`` as a :class:`DegradationWarning` once per process.

    Returns True if the warning fired (first time for ``key``). The
    paired counter still increments every time, so repeated degradation
    stays countable while a long-running process logs it exactly once.
    """
    with _warned_lock:
        if key in _warned:
            return False
        _warned.add(key)
    warnings.warn(message, DegradationWarning, stacklevel=3)
    return True


def reset_warnings() -> None:
    """Forget which one-shot warnings fired (test isolation)."""
    with _warned_lock:
        _warned.clear()
