"""FF001: no SIMD numpy transcendentals in bit-identity-critical modules.

**Invariant.** ``np.exp``/``np.log``/``np.power`` and friends evaluate
through SIMD polynomial kernels that are *not* bit-identical to CPython's
libm-backed ``math.exp``/``math.log``/``**`` on every box. Any module
whose contract is exact ``==`` equality with a scalar reference walk must
apply transcendentals with scalar ``math`` calls (elementwise if needed);
everything else in numpy (mul/add/div, gathers, ``np.minimum``,
``np.bincount``) matches the scalar path op-for-op and stays allowed.

**Provenance.** The PR 4 shadow-flow kernel hit this first (``np.exp``
for congestion RTTs diverged from the stateful walk), and PR 6's columnar
synthesis hit it again for the lognormal capacity chain -- ROADMAP calls
it "the PR 4 lesson again". Twice is a pattern; now it is a lint.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, LintContext, register_rule

#: Modules whose contract is bit-identity with a scalar reference path.
CRITICAL_MODULES = ("repro.kernel", "repro.shadow.flows",
                    "repro.tornet.columnar")

#: numpy functions with SIMD kernels that diverge from scalar libm.
TRANSCENDENTALS = frozenset(
    {"exp", "exp2", "expm1", "log", "log1p", "log2", "log10", "power"}
)


def _in_critical_module(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in CRITICAL_MODULES
    )


@register_rule("FF001", "numpy-transcendental")
def check_numpy_transcendentals(ctx: LintContext) -> Iterator[Finding]:
    """SIMD ``np.exp``/``np.power``/... forbidden where ``==`` oracles rule."""
    if not _in_critical_module(ctx.module):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None or not resolved.startswith("numpy."):
            continue
        leaf = resolved.rsplit(".", 1)[-1]
        if leaf in TRANSCENDENTALS and resolved == f"numpy.{leaf}":
            yield ctx.finding(
                node, "FF001",
                f"SIMD numpy transcendental `{resolved}` in "
                f"bit-identity-critical module {ctx.module}; apply scalar "
                f"`math.{leaf if leaf != 'power' else 'pow'}` elementwise "
                "instead (the PR 4/PR 6 transcendental trap)",
            )
