"""FF005: the import DAG -- lower layers never import upper layers.

**Invariant.** The layering is ``tornet`` -> ``core`` -> ``kernel`` ->
``api`` -> ``service`` (with ``obs`` a leaf the execution layers may
*report* through). The three lower layers must not import ``repro.api``,
``repro.service``, or the obs *exporter* surface (``obs.export`` /
``obs.validate`` / ``obs.profiling``) at module scope: an upward
module-scope edge makes import order load-bearing, reintroduces the
circular-import class PR 3 untangled, and couples kernel workers
(pickled into subprocesses) to the full front-door stack. Counters and
spans (``obs.metrics``/``obs.trace``) are explicitly allowed -- that is
the PR 7 reporting substrate. Function-scope (lazy) imports are the
sanctioned escape hatch for legacy shims.

**Provenance.** PR 3 made every legacy entry point a shim over
``repro.api`` and had to lazy-import in ``core/netmeasure.py`` to avoid
a cycle; the one surviving module-scope edge there (a ``TYPE_CHECKING``
type-only import) is grandfathered in the baseline with its proof.

This module also owns the ``--graph dot`` emitter: the module-scope
import DAG across ``repro``, for eyeballing layer drift.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.core import (
    Finding,
    LintContext,
    module_name_for,
    register_rule,
)

#: Packages that form the lower layers of the DAG.
RESTRICTED_PACKAGES = ("repro.tornet", "repro.core", "repro.kernel")

#: Upward targets the lower layers must not name at module scope.
FORBIDDEN_TARGETS = (
    "repro.api", "repro.service",
    "repro.obs.export", "repro.obs.validate", "repro.obs.profiling",
)


def _in_package(module: str, packages: Iterable[str]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


def _forbidden(target: str) -> bool:
    return any(
        target == t or target.startswith(t + ".") for t in FORBIDDEN_TARGETS
    )


def _module_scope_imports(
    tree: ast.Module,
) -> Iterator[ast.Import | ast.ImportFrom]:
    """Imports executed (or named) at module scope.

    ``if``/``try`` blocks at module scope count -- including
    ``if TYPE_CHECKING:`` bodies, which still write a module-scope edge
    into the DAG even though it never executes at runtime (type-only
    edges are baselined individually, not silently allowed).
    """
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try)):
            for body in (
                getattr(node, "body", []), getattr(node, "orelse", []),
                getattr(node, "finalbody", []),
            ):
                stack.extend(body)
            for handler in getattr(node, "handlers", []):
                stack.extend(handler.body)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            stack.extend(node.body)


@register_rule("FF005", "layering")
def check_layering(ctx: LintContext) -> Iterator[Finding]:
    """Module-scope upward imports from ``tornet``/``core``/``kernel``."""
    if not _in_package(ctx.module, RESTRICTED_PACKAGES):
        return
    for node in _module_scope_imports(ctx.tree):
        targets = (
            [node.module] if isinstance(node, ast.ImportFrom) and node.module
            else [a.name for a in node.names]
            if isinstance(node, ast.Import)
            else []
        )
        for target in targets:
            if _forbidden(target):
                yield ctx.finding(
                    node, "FF005",
                    f"lower layer {ctx.module} imports {target} at module "
                    "scope; the DAG is tornet -> core -> kernel -> api -> "
                    "service (obs.metrics/obs.trace allowed) -- lazy-import "
                    "inside the function that needs it",
                )


# ----------------------------------------------------------------------
# --graph dot: the module-scope import DAG
# ----------------------------------------------------------------------

def module_graph(
    paths: Iterable[Path], root: Path
) -> dict[str, set[str]]:
    """Module -> imported ``repro.*`` modules (module scope only)."""
    graph: dict[str, set[str]] = {}
    files = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    for path in files:
        module = module_name_for(path, root)
        if not module.startswith("repro"):
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        # ff-lint: allow[FF006] reason=the graph emitter skips unparsable files; the lint run itself reports them as FF000
        except (SyntaxError, OSError):
            continue
        edges = graph.setdefault(module, set())
        for node in _module_scope_imports(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    edges.add(node.module)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro"):
                        edges.add(alias.name)
    return graph


def emit_dot(graph: dict[str, set[str]]) -> str:
    """Render the import DAG as Graphviz DOT, clustered by top package."""
    lines = [
        "digraph repro_imports {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
    ]
    packages: dict[str, list[str]] = {}
    for module in sorted(set(graph) | {t for ts in graph.values() for t in ts}):
        top = ".".join(module.split(".")[:2])
        packages.setdefault(top, []).append(module)
    for i, (top, modules) in enumerate(sorted(packages.items())):
        lines.append(f'  subgraph cluster_{i} {{ label="{top}";')
        for module in modules:
            lines.append(f'    "{module}";')
        lines.append("  }")
    for module in sorted(graph):
        for target in sorted(graph[module]):
            lines.append(f'  "{module}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
