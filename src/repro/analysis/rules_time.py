"""FF002: wall-clock reads belong to the observability layer only.

**Invariant.** Deterministic code never reads a wall clock: campaign
results must be a pure function of (config, seeds), and ``repro.obs``'s
contract is "spans read clocks, never RNGs" -- the *only* places a clock
read is sound are the observability layer itself (``repro.obs``), the
service's pluggable clock abstraction (``repro.service.clock``), and
offline tooling under ``scripts/``. Anything else that needs time must
take a :class:`repro.service.clock.Clock` or report through a tracer
span.

**Provenance.** PR 7's perturbation guard
(``tests/obs/test_campaign_tracing.py``: a traced campaign is
bit-identical to an untraced one) and PR 8's journaling-on-vs-off pin
both exist because one stray ``time.time()`` in a results path would
silently break kill/resume bit-identity. Grandfathered telemetry reads
(round wall-time on reports) live in the baseline with their proofs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, LintContext, register_rule

#: Module prefixes where clock reads are the whole point.
ALLOWED_MODULES = ("repro.obs", "repro.service.clock")

#: Path prefixes exempt wholesale (offline tooling, not library code).
ALLOWED_PATH_PREFIXES = ("scripts",)

CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _allowed(ctx: LintContext) -> bool:
    if any(
        ctx.module == prefix or ctx.module.startswith(prefix + ".")
        for prefix in ALLOWED_MODULES
    ):
        return True
    rel = ctx.rel_path.replace("\\", "/")
    return any(
        rel.startswith(prefix + "/") for prefix in ALLOWED_PATH_PREFIXES
    )


@register_rule("FF002", "wall-clock")
def check_wall_clock(ctx: LintContext) -> Iterator[Finding]:
    """Clock reads outside ``repro.obs``/``repro.service.clock``/scripts."""
    if _allowed(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved in CLOCK_CALLS:
            yield ctx.finding(
                node, "FF002",
                f"wall-clock read `{resolved}` outside the observability "
                "layer; deterministic paths must be pure functions of "
                "(config, seeds) -- read time through a tracer span or a "
                "pluggable Clock",
            )
