"""FF003: all randomness flows through seeded RNG objects.

**Invariant.** Every stochastic draw comes from a ``random.Random`` /
numpy generator derived from an explicit seed via :mod:`repro.rng`
(``seed_from``/``fork``/``fork_numpy``). Ambient entropy --
``os.urandom``, the ``random`` module's *module-level* functions (which
draw from the shared, unseeded global instance), ``random.SystemRandom``,
and ``np.random``'s legacy global functions -- makes same-seed runs
diverge and is forbidden everywhere in library code. Seeded
*constructors* (``random.Random(seed)``, ``np.random.default_rng``,
``np.random.RandomState``...) are exactly the sanctioned path and stay
allowed.

**Provenance.** Two live ``os.urandom`` call sites sat in nominally
deterministic paths until this PR (``tornet/cell.py`` default cell
payloads, ``kernel/supply.py`` verification-replay payloads) -- both now
draw from seeded streams, and this rule keeps the door shut.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, LintContext, register_rule

#: Seeded constructors under ``numpy.random`` -- the sanctioned path.
NUMPY_CONSTRUCTORS = frozenset({
    "RandomState", "Generator", "default_rng", "SeedSequence",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64", "BitGenerator",
})

#: ``random`` module attributes that are *not* ambient global draws.
RANDOM_ALLOWED = frozenset({"Random"})


@register_rule("FF003", "ambient-randomness")
def check_ambient_randomness(ctx: LintContext) -> Iterator[Finding]:
    """``os.urandom`` / global ``random.*`` / ``np.random.*`` draws."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        if resolved == "os.urandom":
            yield ctx.finding(
                node, "FF003",
                "`os.urandom` in library code: ambient entropy breaks "
                "same-seed reproducibility; draw from a seeded RNG "
                "(`repro.rng.fork`) or take the caller's stream",
            )
        elif resolved == "random.SystemRandom":
            yield ctx.finding(
                node, "FF003",
                "`random.SystemRandom` is OS entropy in a Random costume; "
                "use `random.Random(seed_from(...))`",
            )
        elif (
            resolved.startswith("random.")
            and resolved.count(".") == 1
            and resolved.split(".")[1] not in RANDOM_ALLOWED
        ):
            leaf = resolved.split(".")[1]
            yield ctx.finding(
                node, "FF003",
                f"module-level `random.{leaf}` draws from the shared "
                "unseeded global RNG; all randomness must flow through a "
                "seeded `random.Random` (see `repro.rng.fork`)",
            )
        elif (
            resolved.startswith("numpy.random.")
            and resolved.count(".") == 2
            and resolved.split(".")[2] not in NUMPY_CONSTRUCTORS
        ):
            leaf = resolved.split(".")[2]
            yield ctx.finding(
                node, "FF003",
                f"legacy global `np.random.{leaf}` call; use a seeded "
                "generator (`repro.rng.fork_numpy` or "
                "`np.random.RandomState(seed)`) instead",
            )
