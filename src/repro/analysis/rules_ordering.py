"""FF004: no unordered iteration where draw order or relay state is live.

**Invariant.** ``set``/``frozenset`` iteration order depends on hash
seeding and insertion history; any function that both iterates such a
collection and touches an RNG stream or relay state couples *draw order*
(or settlement order) to that accident. Determinism-critical loops
iterate sorted views (``sorted(members)``) or insertion-ordered dicts
built from ordered inputs.

**Provenance.** The PR 8 churn derivation is the canonical fix: period
events derive from ``(churn_seed, k, sorted membership)`` precisely
because iterating the membership *set* would have made churn depend on
hash order. This rule mechanizes the code-review question "is that loop
order stable?" for every function that holds an RNG.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, LintContext, register_rule

#: Identifiers whose presence marks a function as RNG-touching.
RNG_MARKERS = frozenset({"rng", "_rng", "fork", "fork_numpy", "random"})

#: Identifiers marking live relay/network state.
STATE_MARKERS = frozenset({"relay", "relays", "network"})


def _identifiers(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _set_producing_names(fn: ast.AST) -> set[str]:
    """Names assigned from a set expression anywhere in the function."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and _is_unordered(node.value, set()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and isinstance(node.target, ast.Name)
            and _is_unordered(node.value, set())
        ):
            names.add(node.target.id)
    return names


def _is_unordered(node: ast.expr, set_names: set[str]) -> bool:
    """Does this expression produce a set (or a dict built from one)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        # dict.fromkeys(<set>) / dict(<set>...) keep the set's order.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "fromkeys"
            and isinstance(func.value, ast.Name)
            and func.value.id == "dict"
            and node.args
            and _is_unordered(node.args[0], set_names)
        ):
            return True
        # <set>.union/.intersection/... chains are still sets.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("union", "intersection", "difference",
                              "symmetric_difference", "copy")
            and _is_unordered(func.value, set_names)
        ):
            return True
        # .keys()/.values()/.items() on a dict built from a set.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("keys", "values", "items")
            and _is_unordered(func.value, set_names)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered(node.left, set_names) and _is_unordered(
            node.right, set_names
        )
    return False


def _iteration_sites(fn: ast.AST) -> Iterator[ast.expr]:
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                yield comp.iter


@register_rule("FF004", "unordered-iteration")
def check_unordered_iteration(ctx: LintContext) -> Iterator[Finding]:
    """Set-ordered loops inside RNG-/relay-state-touching functions."""
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        idents = _identifiers(fn)
        touches_rng = bool(idents & RNG_MARKERS) or any(
            i.endswith("_rng") or i.endswith("_seed") or i == "seed"
            for i in idents
        )
        touches_state = bool(idents & STATE_MARKERS)
        if not (touches_rng or touches_state):
            continue
        set_names = _set_producing_names(fn)
        for it in _iteration_sites(fn):
            # sorted(...) / list(sorted(...)) impose a stable order.
            if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                    and it.func.id in ("sorted", "enumerate", "len"):
                continue
            if _is_unordered(it, set_names):
                what = "RNG stream" if touches_rng else "relay state"
                yield ctx.finding(
                    it, "FF004",
                    "iterating a set (hash order) in a function that "
                    f"touches {what}: draw/settlement order becomes "
                    "hash-seed-dependent; wrap the iterable in sorted()",
                )
