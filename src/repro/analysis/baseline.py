"""The grandfathered-findings baseline: strict from day one.

``.ff-lint-baseline.json`` records every finding that predates the lint
(or is individually justified) so ``python -m repro.analysis --strict``
can fail on *new* findings immediately without first boiling the ocean.
Every entry carries a mandatory non-empty ``reason`` -- the baseline is
a ledger of justified exceptions, not an unexplained mute button -- and
CI self-checks that invariant on every push.

Entries match findings on ``(path, code, context)`` where ``context``
is the stripped source line, so unrelated edits that shift line numbers
do not invalidate the baseline; the recorded ``line`` is informational.
``--update-baseline`` re-runs the lint and rewrites the file from the
current findings, preserving reasons of entries that still match and
pruning entries whose findings were fixed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.analysis.core import Finding

SCHEMA = "ff-lint-baseline/1"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and why it is acceptable."""

    code: str
    path: str
    line: int
    context: str
    reason: str

    def key(self) -> tuple[str, str, str]:
        return (self.path, self.code, self.context)


class BaselineError(ValueError):
    """The baseline file is malformed (schema, fields, empty reasons)."""


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Load and validate the baseline; a missing file is an empty one."""
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        raise BaselineError(f"{path}: expected schema {SCHEMA!r}")
    entries = []
    for i, raw in enumerate(data.get("entries", [])):
        missing = {"code", "path", "line", "context", "reason"} - set(raw)
        if missing:
            raise BaselineError(
                f"{path}: entry {i} missing field(s) {sorted(missing)}"
            )
        entries.append(
            BaselineEntry(
                code=raw["code"], path=raw["path"], line=int(raw["line"]),
                context=raw["context"], reason=str(raw["reason"]),
            )
        )
    return entries


def check_reasons(entries: list[BaselineEntry]) -> list[BaselineEntry]:
    """Entries whose mandatory reason is empty (CI fails on any)."""
    return [e for e in entries if not e.reason.strip()]


def save_baseline(path: Path, entries: list[BaselineEntry]) -> None:
    ordered = sorted(entries, key=lambda e: (e.path, e.line, e.code))
    payload = {"schema": SCHEMA, "entries": [asdict(e) for e in ordered]}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def match_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry], list[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(new_findings, matched_entries, stale_entries)``. Matching
    is by ``(path, code, context)`` with multiplicity: two identical
    lines need two entries. Stale entries (matching no current finding)
    mean the violation was fixed -- ``--update-baseline`` prunes them,
    and ``--strict`` reports them so the baseline only ever shrinks
    deliberately.
    """
    pool: dict[tuple[str, str, str], list[BaselineEntry]] = {}
    for entry in entries:
        pool.setdefault(entry.key(), []).append(entry)
    new_findings: list[Finding] = []
    matched: list[BaselineEntry] = []
    for finding in findings:
        bucket = pool.get(finding.key())
        if bucket:
            matched.append(bucket.pop())
        else:
            new_findings.append(finding)
    stale = [entry for bucket in pool.values() for entry in bucket]
    return new_findings, matched, stale


def updated_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> list[BaselineEntry]:
    """The baseline that exactly covers ``findings``.

    Reasons of surviving entries are preserved; brand-new findings get
    an empty reason that *must* be filled in by hand before the file
    passes the reason self-check.
    """
    pool: dict[tuple[str, str, str], list[BaselineEntry]] = {}
    for entry in entries:
        pool.setdefault(entry.key(), []).append(entry)
    updated = []
    for finding in findings:
        bucket = pool.get(finding.key())
        reason = bucket.pop().reason if bucket else ""
        updated.append(
            BaselineEntry(
                code=finding.code, path=finding.path, line=finding.line,
                context=finding.context, reason=reason,
            )
        )
    return updated
