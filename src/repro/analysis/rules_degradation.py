"""FF006: a swallowed exception is counted and warned, never silent.

**Invariant.** An ``except`` handler that falls back or continues (no
``raise`` anywhere in its body) must leave evidence: increment a metrics
counter (``.inc(...)`` / ``.observe(...)`` on a registry instrument) or
fire a one-shot ``warn_once``. A degradation that changes the execution
strategy -- shm transport falling back to pickling, a worker pool
rebuilding after a crash -- is bit-identical by design, but *silently*
taking the slow path is how perf regressions and environment breakage
hide for months.

**Provenance.** PR 7 established the contract for exactly those two
cases: ``kernel.shm.fallbacks`` and ``kernel.pool.rebuilds`` each count
the event *and* fire a ``DegradationWarning`` via ``warn_once``. This
rule generalizes it to every handler that swallows. CLI ``__main__``
modules are exempt: converting an exception into an error message and a
nonzero exit *is* the evidence there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, LintContext, register_rule

#: Call names that count as "evidence" the degradation was recorded.
WARN_CALLS = frozenset({"warn_once", "warn", "warning", "error", "exception"})

#: Method names that record the event on a metrics instrument.
METRIC_METHODS = frozenset({"inc", "observe", "set"})


def _handler_has_evidence(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in WARN_CALLS:
                return True
            if isinstance(func, ast.Attribute) and (
                func.attr in WARN_CALLS or func.attr in METRIC_METHODS
            ):
                return True
    return False


@register_rule("FF006", "silent-degradation")
def check_silent_degradation(ctx: LintContext) -> Iterator[Finding]:
    """``except`` fallbacks with no counter increment and no ``warn_once``."""
    if ctx.module.rsplit(".", 1)[-1] == "__main__":
        return  # CLI boundary: the error message + exit code is the evidence
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if not _handler_has_evidence(handler):
                caught = (
                    ast.unparse(handler.type) if handler.type is not None
                    else "BaseException"
                )
                yield ctx.finding(
                    handler, "FF006",
                    f"`except {caught}` falls back silently: no re-raise, "
                    "no metrics counter, no warn_once -- degradations must "
                    "leave evidence (the PR 7 shm-fallback/pool-rebuild "
                    "contract)",
                )
