"""The lint framework: findings, rule registry, suppressions, the runner.

A *rule* is a function ``check(ctx) -> Iterable[Finding]`` registered
under a stable code (``FF001``...) with :func:`register_rule`; one module
per rule family (``rules_numeric``, ``rules_time``, ...). The runner
parses each file once into a :class:`LintContext` (AST + source lines +
resolved import aliases) and hands it to every rule, then filters the
findings through inline suppressions.

Suppressions are the comment grammar::

    # ff-lint: allow[FF001] reason=why this occurrence is sound
    # ff-lint: allow[FF002,FF003] reason=shared justification

A suppression on its own line covers the next code line; a trailing
comment covers its own line. The reason is mandatory: an ``allow``
without one (or naming an unknown code) suppresses nothing and is
itself an ``FF000`` finding, so suppressions can never rot into
unexplained escape hatches.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Framework-level findings (bad suppressions, unparsable files).
FRAMEWORK_CODE = "FF000"
FRAMEWORK_NAME = "suppression-hygiene"

_SUPPRESS_RE = re.compile(
    r"#\s*ff-lint:\s*allow\[([A-Za-z0-9_,\s]*)\]\s*(?:reason=(.*))?$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a file/line, with a stable code.

    ``context`` is the stripped source line: baseline matching keys on
    ``(path, code, context)`` rather than the line number, so findings
    survive unrelated edits that shift lines.
    """

    path: str
    line: int
    code: str
    message: str
    context: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.path, self.code, self.context)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable code, short name, check function."""

    code: str
    name: str
    check: Callable[["LintContext"], Iterable[Finding]]
    doc: str


_REGISTRY: dict[str, Rule] = {}


def register_rule(code: str, name: str):
    """Register ``check(ctx)`` under ``code``; the docstring is the spec."""

    def decorator(fn: Callable[["LintContext"], Iterable[Finding]]):
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code=code, name=name, check=fn,
                               doc=(fn.__doc__ or "").strip())
        return fn

    return decorator


def all_rules() -> dict[str, Rule]:
    """Registered rules by code (framework pseudo-rule included)."""
    rules = dict(_REGISTRY)
    rules.setdefault(
        FRAMEWORK_CODE,
        Rule(
            code=FRAMEWORK_CODE,
            name=FRAMEWORK_NAME,
            check=lambda ctx: (),
            doc="Every inline suppression names a registered rule code "
                "and carries a non-empty reason.",
        ),
    )
    return rules


@dataclass
class _Suppression:
    line: int          # the code line this suppression covers
    codes: tuple[str, ...]
    reason: str


class LintContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, path: Path, rel_path: str, module: str, source: str):
        self.path = path
        self.rel_path = rel_path
        #: Dotted module name (``repro.kernel.supply``), or ``""`` when
        #: the file does not map into a package under the scan root.
        self.module = module
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: ``import X as Y`` aliases: local name -> module dotted path.
        self.module_aliases: dict[str, str] = {}
        #: ``from X import Y as Z``: local name -> ``X.Y``.
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve an attribute chain to a dotted name rooted at a module.

        ``np.random.rand`` -> ``numpy.random.rand`` (via ``import numpy
        as np``); a bare name imported with ``from time import
        perf_counter`` resolves to ``time.perf_counter``. Chains rooted
        at local variables resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.module_aliases:
            parts.append(self.module_aliases[root])
        elif root in self.from_imports:
            if parts:
                parts.append(self.from_imports[root])
            else:
                return self.from_imports[root]
        else:
            return None
        return ".".join(reversed(parts))

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        context = ""
        if 1 <= line <= len(self.lines):
            context = self.lines[line - 1].strip()
        return Finding(path=self.rel_path, line=line, code=code,
                       message=message, context=context)


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to ``root``.

    A leading ``src`` component is stripped (the repo layout), so
    ``<root>/src/repro/kernel/supply.py`` -> ``repro.kernel.supply`` and
    package ``__init__.py`` files name the package itself.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    # ff-lint: allow[FF006] reason=path outside root maps to no module; the empty name is the documented result
    except ValueError:
        return ""
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _parse_suppressions(
    ctx: LintContext, known_codes: set[str]
) -> tuple[list[_Suppression], list[Finding]]:
    """Extract suppressions and FF000 hygiene findings from a file."""
    suppressions: list[_Suppression] = []
    hygiene: list[Finding] = []
    for i, raw in enumerate(ctx.lines, start=1):
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            continue
        codes = tuple(
            c.strip() for c in match.group(1).split(",") if c.strip()
        )
        reason = (match.group(2) or "").strip()
        context = raw.strip()
        problems = []
        if not codes:
            problems.append("no rule codes")
        unknown = [c for c in codes if c not in known_codes]
        if unknown:
            problems.append(f"unknown code(s) {', '.join(unknown)}")
        if not reason:
            problems.append("missing mandatory reason=")
        if problems:
            hygiene.append(
                Finding(
                    path=ctx.rel_path, line=i, code=FRAMEWORK_CODE,
                    message="bad ff-lint suppression "
                            f"({'; '.join(problems)}); it suppresses nothing",
                    context=context,
                )
            )
            continue
        # A comment-only line covers the next line; a trailing comment
        # covers its own.
        covered = i + 1 if raw.strip().startswith("#") else i
        suppressions.append(
            _Suppression(line=covered, codes=codes, reason=reason)
        )
    return suppressions, hygiene


def _iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_paths(
    paths: Iterable[Path], root: Path
) -> list[Finding]:
    """Run every registered rule over the ``.py`` files under ``paths``.

    Returns all unsuppressed findings, sorted by (path, line, code).
    Unparsable files surface as FF000 findings rather than crashing the
    run -- the lint must never be the thing that hides a syntax error.
    """
    rules = list(_REGISTRY.values())
    known_codes = set(_REGISTRY) | {FRAMEWORK_CODE}
    findings: list[Finding] = []
    for path in _iter_py_files(paths):
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        # ff-lint: allow[FF006] reason=a non-relative path keeps its absolute spelling in findings; nothing is lost
        except ValueError:
            rel = str(path)
        try:
            source = path.read_text(encoding="utf-8")
            ctx = LintContext(
                path=path, rel_path=rel,
                module=module_name_for(path, root), source=source,
            )
        # ff-lint: allow[FF006] reason=the unparsable file becomes an FF000 finding below; the finding is the evidence
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            findings.append(
                Finding(path=rel, line=getattr(exc, "lineno", None) or 1,
                        code=FRAMEWORK_CODE,
                        message=f"file is unparsable: {exc}")
            )
            continue
        suppressions, hygiene = _parse_suppressions(ctx, known_codes)
        findings.extend(hygiene)
        by_line: dict[int, list[_Suppression]] = {}
        for sup in suppressions:
            by_line.setdefault(sup.line, []).append(sup)
        for rule in rules:
            for finding in rule.check(ctx):
                suppressed = any(
                    finding.code in sup.codes
                    for sup in by_line.get(finding.line, ())
                )
                if not suppressed:
                    findings.append(finding)
    return sorted(findings)
