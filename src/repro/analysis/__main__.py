"""``python -m repro.analysis``: run the determinism & layering lint.

Exit codes: 0 clean (every finding baselined), 1 new findings (or, under
``--strict``, stale/reason-less baseline entries), 2 usage or baseline
format errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis import (  # noqa: F401  (imports register the rules)
    all_rules,
    load_baseline,
    match_baseline,
    run_paths,
    save_baseline,
)
from repro.analysis.baseline import (
    BaselineError,
    check_reasons,
    updated_baseline,
)
from repro.analysis.rules_layering import emit_dot, module_graph

BASELINE_NAME = ".ff-lint-baseline.json"


def _find_root(start: pathlib.Path) -> pathlib.Path:
    """Nearest ancestor that looks like the repo root (has src/repro)."""
    for candidate in (start, *start.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & layering lint for the FlashFlow repro.",
    )
    parser.add_argument(
        "paths", nargs="*", type=pathlib.Path,
        help="files or directories to lint (default: <root>/src)",
    )
    parser.add_argument(
        "--root", type=pathlib.Path, default=None,
        help="repo root for module-name resolution and the default "
             "baseline location (default: nearest ancestor with src/repro)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries and entries with an "
             "empty reason",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from current findings (reasons of "
             "surviving entries are preserved; fixed entries are pruned; "
             "new entries get an empty reason you must fill in)",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="only validate the baseline file (schema + non-empty "
             "reasons) and exit",
    )
    parser.add_argument(
        "--graph", choices=("dot",), default=None,
        help="emit the module-scope import DAG and exit",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON instead of text",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    root = (args.root or _find_root(pathlib.Path.cwd())).resolve()
    baseline_path = args.baseline or root / BASELINE_NAME
    paths = args.paths or [root / "src"]

    if args.rules:
        for rule in sorted(all_rules().values(), key=lambda r: r.code):
            first_line = rule.doc.splitlines()[0] if rule.doc else ""
            print(f"{rule.code}  {rule.name:22s} {first_line}")
        return 0

    if args.graph:
        sys.stdout.write(emit_dot(module_graph(paths, root)))
        return 0

    try:
        entries = [] if args.no_baseline else load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.check_baseline:
        reasonless = check_reasons(entries)
        for entry in reasonless:
            print(
                f"{baseline_path}: entry for {entry.path}:{entry.line} "
                f"[{entry.code}] has an empty reason", file=sys.stderr,
            )
        if reasonless:
            return 1
        print(
            f"baseline ok: {len(entries)} entr"
            f"{'y' if len(entries) == 1 else 'ies'}, all with reasons"
        )
        return 0

    findings = run_paths(paths, root)
    new, matched, stale = match_baseline(findings, entries)

    if args.update_baseline:
        updated = updated_baseline(findings, entries)
        save_baseline(baseline_path, updated)
        pruned = len(stale)
        empty = len(check_reasons(updated))
        print(
            f"wrote {baseline_path}: {len(updated)} entries "
            f"({pruned} pruned, {len(new)} new)"
        )
        if empty:
            print(
                f"warning: {empty} new entr"
                f"{'y needs' if empty == 1 else 'ies need'} a reason= "
                "filled in before --check-baseline passes",
                file=sys.stderr,
            )
        return 0

    if args.as_json:
        print(json.dumps(
            {
                "new": [f.__dict__ for f in new],
                "baselined": len(matched),
                "stale_baseline_entries": [e.__dict__ for e in stale],
            },
            indent=2,
        ))
    else:
        for finding in new:
            print(finding.render())
        if stale and args.strict:
            for entry in stale:
                print(
                    f"{entry.path}: stale baseline entry [{entry.code}] "
                    f"(context no longer found: {entry.context!r}) -- run "
                    "--update-baseline to prune",
                )
    failed = bool(new)
    if args.strict:
        reasonless = check_reasons(entries)
        for entry in reasonless:
            print(
                f"{baseline_path}: entry for {entry.path}:{entry.line} "
                f"[{entry.code}] has an empty reason"
            )
        failed = failed or bool(stale) or bool(reasonless)
    if not args.as_json:
        summary = (
            f"{len(new)} new finding{'s' if len(new) != 1 else ''}, "
            f"{len(matched)} baselined, {len(stale)} stale"
        )
        print(("FAIL: " if failed else "ok: ") + summary)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
