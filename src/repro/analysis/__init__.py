"""Determinism & layering lint: the repo's bit-identity invariants, enforced.

The whole architecture (PRs 2--9) rests on *bit-identity* across five
kernel backends under fixed seeds, and on a handful of rules that
guarantee it: no SIMD transcendentals in kernel paths, no wall-clock or
ambient randomness in deterministic code, spans read clocks never RNGs,
silent degradations must be counted and warned. Until this package,
those rules lived only in docstrings and reviewer memory -- and the
PR 4/PR 6 ``np.exp`` trap plus two live ``os.urandom`` call sites show
how reliably prose-only invariants decay.

``repro.analysis`` turns them into CI-enforced checks, the same way
``repro.obs.validate`` and ``repro.service.validate`` mechanized the
trace and journal grammars: a zero-dependency AST lint with a rule
registry (one module per rule family), stable finding codes, inline
suppressions that *must* carry a reason, and a JSON baseline
(``.ff-lint-baseline.json``) for grandfathered findings so the tool is
strict from day one.

Run it::

    python -m repro.analysis [--strict] [paths...]
    python -m repro.analysis --graph dot       # module import DAG
    python -m repro.analysis --update-baseline

Rules (each rule's docstring states its invariant and provenance):

========  ======================  ============================================
code      name                    invariant
========  ======================  ============================================
FF000     suppression-hygiene     every suppression carries a known code
                                  and a non-empty reason
FF001     numpy-transcendental    no SIMD ``np.exp``/``np.log``/... in
                                  bit-identity-critical modules
FF002     wall-clock              clock reads only in the observability
                                  layer, the service clock, and scripts
FF003     ambient-randomness      all randomness flows through seeded RNG
                                  objects, never ambient entropy
FF004     unordered-iteration     no set/dict-from-set iteration order in
                                  RNG- or relay-state-touching functions
FF005     layering                ``tornet``/``core``/``kernel`` never import
                                  ``api``/``service``/obs-exporters at
                                  module scope
FF006     silent-degradation      a swallowed exception increments a metrics
                                  counter or fires ``warn_once``
========  ======================  ============================================

Suppress a finding inline (the reason is mandatory; a reason-less
``allow`` does not suppress and is itself an FF000 finding)::

    value = np.exp(x)  # ff-lint: allow[FF001] reason=not a kernel path
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BaselineEntry,
    load_baseline,
    match_baseline,
    save_baseline,
)
from repro.analysis.core import (
    Finding,
    LintContext,
    all_rules,
    register_rule,
    run_paths,
)

# Importing the rule modules registers every rule family.
from repro.analysis import rules_numeric  # noqa: E402,F401  (registry)
from repro.analysis import rules_time  # noqa: E402,F401
from repro.analysis import rules_random  # noqa: E402,F401
from repro.analysis import rules_ordering  # noqa: E402,F401
from repro.analysis import rules_layering  # noqa: E402,F401
from repro.analysis import rules_degradation  # noqa: E402,F401

__all__ = [
    "BaselineEntry",
    "Finding",
    "LintContext",
    "all_rules",
    "load_baseline",
    "match_baseline",
    "register_rule",
    "run_paths",
    "save_baseline",
]
