#!/usr/bin/env python
"""Kernel benchmark runner: fixed-seed campaign benches, machine-readable.

Times the slowest measurement-campaign workloads (the Figure 6 accuracy
grid, the Figure 15/16 multiplier sweep, and a whole-network campaign)
on every kernel backend plus the PR 1 stateful engine path, verifies all
paths produce bit-identical estimates, and writes
``benchmarks/results/BENCH_kernel.json`` so future PRs have a recorded
perf trajectory.

The whole-network campaign runs through the scenario API
(:class:`repro.api.Campaign`); the ``api_overhead`` section times that
API path against a verbatim port of the pre-API campaign loop (no
scenario resolution, no events, no report) on identical seeds and
asserts the API layer costs < 2%.

The ``pr1_engine`` row re-times the PR 1 execution path (a serial
``MeasurementEngine.run`` loop -- exactly what ``run_measurement`` did
before the kernel) on the same machine and seeds, so speedups are
apples-to-apples. ``process`` parallelism scales with ``cpu_count``;
the recorded value documents the machine it ran on.

Usage: PYTHONPATH=src python scripts/bench.py [--repeats N] [--output PATH]
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import quick_team  # noqa: E402
from repro.api import Campaign, ExecutionConfig, Scenario  # noqa: E402
from repro.obs import Tracer, use_tracer  # noqa: E402
from repro.core.allocation import allocate_capacity, allocate_evenly  # noqa: E402
from repro.core.engine import MeasurementEngine, MeasurementSpec  # noqa: E402
from repro.core.measurer import Measurer  # noqa: E402
from repro.core.params import FlashFlowParams  # noqa: E402
from repro.errors import AllocationError  # noqa: E402
from repro.netsim.latency import NetworkModel  # noqa: E402
from repro.rng import fork, seed_from  # noqa: E402
from repro.tornet.cpu import CpuModel  # noqa: E402
from repro.tornet.network import synthesize_network  # noqa: E402
from repro.tornet.relay import Relay  # noqa: E402
from repro.units import mbit  # noqa: E402

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parents[1]
    / "benchmarks" / "results" / "BENCH_kernel.json"
)
BACKENDS = ("serial", "thread", "process", "vector")

#: The bench's own recording tracer: every timed block is a span here
#: (the same clock discipline ``repro.obs`` uses everywhere else),
#: replacing the historical ad-hoc perf_counter pairs. It is *not*
#: installed as the ambient tracer, so timed campaign code still runs
#: its zero-overhead null-tracer path -- except in ``measure_stages``,
#: which installs one deliberately to record the campaign's own spans.
_BENCH_TRACER = Tracer()


def _timed(name: str, fn, **attrs):
    """Run ``fn`` under a bench span; returns (wall_seconds, result)."""
    with _BENCH_TRACER.span(name, **attrs) as span:
        result = fn()
    return span.wall_seconds, result

#: Ground-truth Tor capacity of US-SW per configured limit (§6.1, E.2) --
#: the same grid the fig06/fig15 pytest benches sweep.
GROUND_TRUTH = {
    10: mbit(9.58),
    250: mbit(239),
    500: mbit(494),
    750: mbit(741),
    0: mbit(890),
}
MEASURERS = ("US-NW", "US-E", "IN", "NL")


def _target(limit: int, tag: str, seed: int, model: NetworkModel) -> Relay:
    relay = Relay(
        fingerprint=f"{tag}-{limit}-{seed}",
        host=model.host("US-SW"),
        cpu=CpuModel(max_forward_bits=mbit(890)),
        seed=seed,
    )
    if limit:
        relay.set_rate_limit(GROUND_TRUTH[limit])
    return relay


def fig06_specs(repetitions: int = 7, seed: int = 3) -> list[MeasurementSpec]:
    """The Figure 6 accuracy grid as independent specs (30 s slots)."""
    params = FlashFlowParams()
    model = NetworkModel.paper_internet(seed=seed)
    specs = []
    for limit, truth in GROUND_TRUTH.items():
        required = params.allocation_factor * truth
        for size in range(1, len(MEASURERS) + 1):
            for subset in itertools.combinations(MEASURERS, size):
                team = [Measurer(name=n, host=model.host(n)) for n in subset]
                if sum(m.capacity for m in team) < required:
                    continue
                if any(required / len(team) > m.capacity for m in team):
                    continue
                for rep in range(repetitions):
                    specs.append(
                        MeasurementSpec(
                            target=_target(
                                limit, "us-sw", rep * 31 + size, model
                            ),
                            assignments=allocate_evenly(team, required),
                            params=params,
                            network=model,
                            target_location="US-SW",
                            seed=seed + rep * 1009
                            + seed_from(0, "-".join(subset)) % 997,
                            enforce_admission=False,
                        )
                    )
    return specs


def fig15_specs(duration: int = 60, seed: int = 15) -> list[MeasurementSpec]:
    """The Figure 15/16 multiplier sweep as independent specs (60 s)."""
    model = NetworkModel.paper_internet(seed=seed)
    specs = []
    for multiplier in (1.5, 1.75, 2.0, 2.25, 2.5):
        params = FlashFlowParams(multiplier=multiplier, slot_seconds=duration)
        for limit, truth in GROUND_TRUTH.items():
            required = multiplier * truth
            for size in (1, 2, 3, 4):
                for subset in itertools.combinations(MEASURERS, size):
                    team = [
                        Measurer(name=n, host=model.host(n)) for n in subset
                    ]
                    if sum(m.capacity for m in team) < required:
                        continue
                    try:
                        assignments = allocate_evenly(team, required)
                    except AllocationError:
                        continue
                    specs.append(
                        MeasurementSpec(
                            target=_target(
                                limit, f"t-{multiplier}", limit + size, model
                            ),
                            assignments=assignments,
                            params=params,
                            network=model,
                            target_location="US-SW",
                            seed=seed + seed_from(
                                0, f"{multiplier}-{limit}-{'-'.join(subset)}"
                            ) % 10000,
                            enforce_admission=False,
                        )
                    )
    return specs


def _time_spec_campaign(make_specs, mode: str, repeats: int):
    """Best-of-N wall time for one execution path over a spec campaign.

    Specs (and their stateful relays) are rebuilt for every timed run so
    each path starts from identical state.
    """
    best, signature, count = float("inf"), None, 0
    for _ in range(repeats):
        specs = make_specs()
        engine = MeasurementEngine()
        if mode == "pr1_engine":
            run = lambda: [engine.run(spec) for spec in specs]  # noqa: E731
        else:
            run = lambda: engine.run_many(specs, backend=mode)  # noqa: E731
        seconds, outcomes = _timed("bench.spec_campaign", run, mode=mode)
        best = min(best, seconds)
        signature = sum(o.estimate for o in outcomes)
        count = len(outcomes)
    return best, signature, count


def _time_network_campaign(mode: str, repeats: int, n_relays: int = 200):
    """Best-of-N wall time for a whole-network campaign (API path)."""
    best, signature, count = float("inf"), None, 0
    for _ in range(repeats):
        network = synthesize_network(n_relays=n_relays, seed=71)
        authority = quick_team(seed=72)
        engine = MeasurementEngine()
        backend = None
        if mode == "pr1_engine":
            # PR 1's serial campaign path executed each round's specs as
            # a stateful engine.run loop; reproduce it exactly.
            engine.run_many = (
                lambda specs, max_workers=None, backend=None, pipeline=None: [
                    engine.run(spec) for spec in specs
                ]
            )
        else:
            backend = mode
        campaign = Campaign(
            Scenario(
                name="bench-network-campaign",
                network=network,
                team=authority,
            ),
            ExecutionConfig(backend=backend),
            engine=engine,
        )
        seconds, report = _timed(
            "bench.network_campaign", campaign.run, mode=mode
        )
        best = min(best, seconds)
        signature = sum(report.estimates.values())
        count = report.measurements_run
    return best, signature, count


def _direct_campaign_loop(network, authority) -> dict[str, float]:
    """The pre-API ``measure_network`` body (cold priors, full sim).

    A verbatim port of the loop as it stood before the scenario API
    absorbed it -- no scenario resolution, no events, no per-round
    records -- kept here as the baseline the API path is timed against
    (the same role ``pr1_engine`` plays for the kernel benches).
    """
    from collections import deque

    from repro.core.allocation import allocate_capacity, total_allocated
    from repro.rng import fork

    params = authority.params
    team = authority.team
    team_capacity = authority.team_capacity()
    engine = authority.engine
    fork(authority.seed, "campaign-analytic")  # loop's (unused) wobble RNG
    estimates: dict[str, float] = {}

    queue = deque(
        (fp, params.new_relay_seed, 0) for fp in network.relays
    )

    def required_for(z0):
        return min(params.allocation_factor * max(z0, 1.0), team_capacity)

    slot_index = 0
    while queue:
        jobs = []
        waiting = queue
        while waiting:
            residual = team_capacity
            this_slot, deferred = [], deque()
            while waiting:
                fp, z0, rounds = waiting.popleft()
                if required_for(z0) <= residual + 1e-6:
                    this_slot.append((fp, z0, rounds))
                    residual -= required_for(z0)
                else:
                    deferred.append((fp, z0, rounds))
            if not this_slot:
                this_slot.append(deferred.popleft())
            for fp, z0, rounds in this_slot:
                required = required_for(z0)
                jobs.append((
                    fp, z0, rounds, slot_index,
                    required < params.allocation_factor * z0,
                    allocate_capacity(team, required),
                ))
            slot_index += 1
            waiting = deferred

        specs = [
            MeasurementSpec(
                target=network[fp],
                assignments=assignments,
                params=params,
                network=authority.network,
                background_demand=0.0,
                seed=authority.seed + slot * 7919 + rounds,
                bwauth_id=authority.name,
                period_index=0,
                enforce_admission=False,
            )
            for fp, z0, rounds, slot, capped, assignments in jobs
        ]
        outcomes = engine.run_many(specs)

        retries = deque()
        for (fp, z0, rounds, slot, capped, assignments), outcome in zip(
            jobs, outcomes
        ):
            if outcome.failed:
                continue
            z = outcome.estimate
            threshold = params.acceptance_threshold(
                total_allocated(assignments)
            )
            if z < threshold or capped:
                estimates[fp] = z
                authority.estimates[fp] = z
            elif rounds + 1 < 8:
                retries.append((fp, max(z, 2.0 * z0), rounds + 1))
        queue = retries
    return estimates


def measure_api_overhead(repeats: int, n_relays: int = 120) -> dict:
    """Scenario-API overhead vs the pre-API campaign loop.

    ``measure_network`` is now itself a shim over the API, so the
    baseline is :func:`_direct_campaign_loop` -- the historical loop
    without scenario resolution, events, or report assembly -- on
    identical seeds. The delta is the true cost of the API layer and
    must stay below 2%.
    """
    def run_direct() -> tuple[float, float]:
        network = synthesize_network(n_relays=n_relays, seed=81)
        authority = quick_team(seed=82)
        seconds, estimates = _timed(
            "bench.api_overhead",
            lambda: _direct_campaign_loop(network, authority),
            mode="direct",
        )
        return seconds, sum(estimates.values())

    def run_api() -> tuple[float, float]:
        network = synthesize_network(n_relays=n_relays, seed=81)
        authority = quick_team(seed=82)
        campaign = Campaign(
            Scenario(name="bench-api-overhead", network=network,
                     team=authority),
            ExecutionConfig(),
        )
        seconds, report = _timed(
            "bench.api_overhead", campaign.run, mode="api"
        )
        return seconds, sum(report.estimates.values())

    direct_best, api_best = float("inf"), float("inf")
    direct_sig = api_sig = None
    for _ in range(repeats):
        seconds, direct_sig = run_direct()
        direct_best = min(direct_best, seconds)
        seconds, api_sig = run_api()
        api_best = min(api_best, seconds)
    overhead = api_best / direct_best - 1.0
    print(f"{'api_overhead':22s} direct {direct_best:8.3f}s  "
          f"api {api_best:8.3f}s  ({overhead * 100:+.2f}%)")
    return {
        "describe": (
            "Campaign.run() (scenario resolution + event/report stream) "
            "vs the pre-API campaign loop, identical seeds"
        ),
        "n_relays": n_relays,
        "direct_seconds": round(direct_best, 4),
        "api_seconds": round(api_best, 4),
        "overhead_fraction": round(overhead, 4),
        "within_2pct": overhead < 0.02,
        "identical_estimates": repr(direct_sig) == repr(api_sig),
    }


#: Shadow flow-simulator bench config: the ``shadow-measurement``-style
#: workload (a §7 performance run on a scaled network), sized so one
#: horizon takes under a second on the vector backend.
SHADOW_BENCH_CONFIG = dict(
    n_relays=60,
    n_markov_clients=120,
    n_benchmark_clients=10,
    sim_seconds=150,
    warmup_seconds=30,
    seed=23,
)
SHADOW_BACKENDS = ("stateful", "vector")


def _shadow_signature(metrics) -> tuple:
    """A trajectory-sensitive fingerprint of one simulation's metrics."""
    return (
        sum(metrics.throughput_series),
        tuple(metrics.ttfb()),
        tuple(metrics.error_rates()),
        metrics.transfers_completed(),
        metrics.transfers_failed(),
        sum(metrics.relay_p95_throughput.values()),
    )


def measure_shadow_flow(repeats: int) -> dict:
    """Stateful-vs-vector wall time for the shadow flow simulator.

    Times one full performance-simulation horizon (the unit of work
    behind every TorFlow warmup and Figure 9 run) on both shadow
    backends, verifies the metrics are bit-identical, and records the
    speedup of the vectorized flow kernel.
    """
    from repro.shadow.config import ShadowConfig, build_network
    from repro.shadow.simulator import NetworkSimulator

    config = ShadowConfig(**SHADOW_BENCH_CONFIG)
    network = build_network(config)
    weights = network.relays.capacities()

    rows: dict[str, float] = {}
    signatures = {}
    for backend in SHADOW_BACKENDS:
        best = float("inf")
        for _ in range(repeats):
            sim = NetworkSimulator(network, seed=24)
            seconds, metrics = _timed(
                "bench.shadow_flow",
                lambda: sim.run(weights, backend=backend),
                backend=backend,
            )
            best = min(best, seconds)
            signatures[backend] = _shadow_signature(metrics)
        rows[backend] = round(best, 4)
        print(f"{'shadow_flow':22s} {backend:11s} {best:8.3f}s  "
              f"({SHADOW_BENCH_CONFIG['sim_seconds']}s horizon)")
    identical = signatures["stateful"] == signatures["vector"]
    if not identical:  # pragma: no cover - a correctness regression
        raise SystemExit("shadow_flow: backends disagree on metrics")
    return {
        "describe": (
            "shadow-measurement flow-simulator horizon (background "
            "circuits + benchmark transfers), stateful walk vs "
            "vectorized flow kernel"
        ),
        "config": dict(SHADOW_BENCH_CONFIG),
        # Per-block provenance: --shadow merges this block into an
        # existing JSON without re-running the other benches, so it
        # must not inherit their timestamp/repeats.
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "seconds": rows,
        "speedup_vector_vs_stateful": round(
            rows["stateful"] / rows["vector"], 2
        ),
        "identical_metrics": identical,
    }


#: Analytic-kernel bench config: one whole-network-scale round of
#: analytic estimates (the unit of work the ``full_simulation=False``
#: campaign path executes per round), plus an end-to-end analytic
#: campaign for context.
ANALYTIC_BENCH_CONFIG = dict(n_jobs=3000, n_relays=300, seed=9)


class _AnalyticBenchJob:
    """The duck-typed job shape run_analytic_round consumes."""

    __slots__ = ("relay", "assignments", "wobble", "capped")

    def __init__(self, relay, assignments, wobble, capped):
        self.relay = relay
        self.assignments = assignments
        self.wobble = wobble
        self.capped = capped


def _analytic_round_jobs(n_jobs: int, seed: int):
    """One large analytic round: varied capacities, rate limits, caps."""
    params = FlashFlowParams()
    auth = quick_team(seed=seed)
    rng = fork(seed, "bench-analytic")
    jobs = []
    for i in range(n_jobs):
        relay = Relay(
            fingerprint=f"an-{i}",
            cpu=CpuModel(max_forward_bits=mbit(40 + 37 * (i % 211))),
            seed=seed + i,
        )
        if i % 6 == 0:
            relay.set_rate_limit(mbit(30 + i % 180))
        jobs.append(
            _AnalyticBenchJob(
                relay=relay,
                assignments=allocate_evenly(auth.team, mbit(90 + 13 * (i % 97))),
                wobble=max(0.8, rng.gauss(1.0, 0.02)),
                capped=(i % 9 == 0),
            )
        )
    return params, jobs


def measure_analytic(repeats: int) -> dict:
    """Stateful-loop vs analytic-kernel wall time for one analytic round.

    The stateful side is exactly what the campaign's
    ``full_simulation=False`` path executed per job before the kernel:
    one ``MeasurementEngine.analytic_estimate`` call plus the fold's
    ``acceptance_threshold(total_allocated(...))`` accept decision. The
    kernel side is :func:`repro.kernel.analytic.run_analytic_round` on
    the ``analytic`` backend -- the whole round as one array walk.
    Verifies exact equality, and also times a full analytic campaign
    end-to-end on both backends for context.
    """
    from repro.core.allocation import total_allocated
    from repro.kernel.analytic import run_analytic_round

    config = dict(ANALYTIC_BENCH_CONFIG)
    params, jobs = _analytic_round_jobs(config["n_jobs"], config["seed"])
    engine = MeasurementEngine()

    def stateful_loop():
        out = []
        for job in jobs:
            z = engine.analytic_estimate(
                job.relay, job.assignments, params, job.wobble
            )
            threshold = params.acceptance_threshold(
                total_allocated(job.assignments)
            )
            out.append((z, z < threshold or job.capped))
        return out

    def analytic_kernel():
        result = run_analytic_round(engine, jobs, params, backend="analytic")
        return list(zip(result.estimates, result.accepted))

    rows: dict[str, float] = {}
    signatures = {}
    # Each timed call walks the same pure jobs; inner repetitions keep
    # the measured spans well above timer resolution.
    inner = 5
    for name, fn in (("stateful_loop", stateful_loop),
                     ("analytic_kernel", analytic_kernel)):
        best = float("inf")
        for _ in range(max(repeats, 2)):
            def run_inner():
                for _ in range(inner):
                    signatures[name] = fn()

            seconds, _ = _timed("bench.analytic_round", run_inner, mode=name)
            best = min(best, seconds / inner)
        rows[name] = round(best, 5)
        print(f"{'analytic_round':22s} {name:15s} {best * 1e3:8.2f}ms  "
              f"({config['n_jobs']} jobs)")
    identical = signatures["stateful_loop"] == signatures["analytic_kernel"]
    if not identical:  # pragma: no cover - a correctness regression
        raise SystemExit("analytic: kernel disagrees with the stateful loop")

    def campaign_seconds(backend: str) -> tuple[float, float]:
        best, signature = float("inf"), None
        for _ in range(repeats):
            network = synthesize_network(
                n_relays=config["n_relays"], seed=config["seed"] + 1
            )
            authority = quick_team(seed=config["seed"] + 2)
            campaign = Campaign(
                Scenario(network=network, team=authority),
                ExecutionConfig(backend=backend, full_simulation=False),
            )
            seconds, report = _timed(
                "bench.analytic_campaign", campaign.run, backend=backend
            )
            best = min(best, seconds)
            signature = sum(report.estimates.values())
        return best, signature

    serial_s, serial_sig = campaign_seconds("serial")
    kernel_s, kernel_sig = campaign_seconds("analytic")
    if repr(serial_sig) != repr(kernel_sig):  # pragma: no cover
        raise SystemExit("analytic: campaign backends disagree on estimates")
    print(f"{'analytic_campaign':22s} serial {serial_s:8.3f}s  "
          f"analytic {kernel_s:8.3f}s  ({config['n_relays']} relays)")
    return {
        "describe": (
            "full_simulation=False round: stateful analytic_estimate loop "
            "(+ per-job accept decision) vs the analytic kernel's array "
            "walk, plus an end-to-end analytic campaign"
        ),
        "config": config,
        # Per-block provenance: --analytic merges this block into an
        # existing JSON without re-running the other benches.
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "seconds": rows,
        "speedup_analytic_vs_stateful": round(
            rows["stateful_loop"] / rows["analytic_kernel"], 2
        ),
        "campaign": {
            "n_relays": config["n_relays"],
            "serial_seconds": round(serial_s, 4),
            "analytic_seconds": round(kernel_s, 4),
            "speedup": round(serial_s / kernel_s, 2),
        },
        "identical_estimates": identical,
    }


#: Pipeline bench config: a whole-network campaign big enough for the
#: round's compile stream to be worth overlapping with execution.
PIPELINE_BENCH_CONFIG = dict(n_relays=150, seed=91, backend="process")


def measure_pipeline(repeats: int) -> dict:
    """Pipelined vs batch round execution on the worker backend.

    Times the same whole-network campaign with
    ``ExecutionConfig(pipeline=False)`` (compile the whole round, then
    execute) and ``pipeline=True`` (stream compiled chunks to the pool
    while the round's tail compiles), verifies the estimates are
    bit-identical, and records the overlap's speedup. Gains scale with
    how much of the round's wall time is main-thread compilation --
    modest on single-core CI, larger on real multi-core hosts (the
    recorded ``cpu_count`` in the top-level report documents the
    machine).
    """
    config = dict(PIPELINE_BENCH_CONFIG)

    def run(pipeline: bool) -> tuple[float, float]:
        best, signature = float("inf"), None
        for _ in range(repeats):
            network = synthesize_network(
                n_relays=config["n_relays"], seed=config["seed"]
            )
            authority = quick_team(seed=config["seed"] + 1)
            campaign = Campaign(
                Scenario(network=network, team=authority),
                ExecutionConfig(backend=config["backend"], pipeline=pipeline),
            )
            seconds, report = _timed(
                "bench.pipeline_campaign", campaign.run, pipeline=pipeline
            )
            best = min(best, seconds)
            signature = sum(report.estimates.values())
        return best, signature

    batch_s, batch_sig = run(False)
    piped_s, piped_sig = run(True)
    identical = repr(batch_sig) == repr(piped_sig)
    if not identical:  # pragma: no cover - a correctness regression
        raise SystemExit("pipeline: pipelined campaign changed estimates")
    print(f"{'pipeline_campaign':22s} batch {batch_s:8.3f}s  "
          f"pipelined {piped_s:8.3f}s  ({config['n_relays']} relays, "
          f"{config['backend']})")
    return {
        "describe": (
            "whole-network campaign on the worker backend: batch rounds "
            "(compile all, then execute) vs pipelined rounds (compile "
            "stream overlaps worker execution)"
        ),
        "config": config,
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "seconds": {
            "batch": round(batch_s, 4),
            "pipelined": round(piped_s, 4),
        },
        "speedup_pipelined_vs_batch": round(batch_s / piped_s, 2),
        "identical_estimates": identical,
    }


#: Scale bench: columnar materialization plus one whole-network campaign
#: round at each network size. Rounds run in the Tor-scale campaign
#: configuration (``full_simulation=False`` -- the analytic kernel's
#: array walk) on the vector backend; the Tor-scale row additionally
#: times the full per-second simulation round for the perf trajectory.
SCALE_NS = (1_000, 10_000, 100_000)
TOR_SCALE_N = 6419  # July 2019 relay count (§6)


def _scale_round_jobs(network, authority):
    """One campaign round's jobs: every relay new, packed greedily."""
    params = authority.params
    team = authority.team
    team_capacity = authority.team_capacity()
    required = min(
        params.allocation_factor * max(params.new_relay_seed, 1.0),
        team_capacity,
    )
    assignments = allocate_capacity(authority.team, required)
    rng = fork(authority.seed, "campaign-analytic")
    jobs = [
        _AnalyticBenchJob(
            relay=network[fp],
            assignments=assignments,
            wobble=max(0.8, rng.gauss(1.0, 0.02)),
            capped=False,
        )
        for fp in network.relays
    ]
    return params, jobs


def measure_scale(repeats: int) -> dict:
    """Tor-scale columnar materialization and whole-network rounds.

    For each network size: best-of-N wall time to materialize the
    columnar network (:func:`synthesize_network`'s default path) and to
    execute one whole-network campaign round -- the analytic kernel's
    array walk on the vector backend, the configuration Tor-scale
    campaigns run in. The Tor-scale (6419-relay) row also times one
    full per-second simulation round (``run_specs`` on the vector
    backend, bulk jitter predraw included) so the full-simulation
    trajectory is on record. ``cpu_count`` provenance lives in the
    block: single-core CI numbers and multi-core workstation numbers
    are not comparable.
    """
    from repro.kernel import run_specs
    from repro.kernel.analytic import run_analytic_round

    rows = {}
    for n in SCALE_NS + (TOR_SCALE_N,):
        materialize = float("inf")
        for _ in range(repeats):
            seconds, network = _timed(
                "bench.scale_materialize",
                lambda: synthesize_network(n_relays=n, seed=71),
                n_relays=n,
            )
            materialize = min(materialize, seconds)
        authority = quick_team(seed=72)
        engine = MeasurementEngine()
        params, jobs = _scale_round_jobs(network, authority)
        round_s = float("inf")
        for _ in range(repeats):
            seconds, result = _timed(
                "bench.scale_round",
                lambda: run_analytic_round(
                    engine, jobs, params, backend="vector"
                ),
                n_relays=n,
            )
            round_s = min(round_s, seconds)
        assert len(result.estimates) == n
        row = {
            "materialize_seconds": round(materialize, 4),
            "analytic_round_seconds": round(round_s, 4),
        }
        if n == TOR_SCALE_N:
            required = min(
                params.allocation_factor * max(params.new_relay_seed, 1.0),
                authority.team_capacity(),
            )
            specs = [
                MeasurementSpec(
                    target=network[fp],
                    assignments=allocate_capacity(authority.team, required),
                    params=params,
                    seed=authority.seed + i * 7919,
                    enforce_admission=False,
                )
                for i, fp in enumerate(network.relays)
            ]
            seconds, outcomes = _timed(
                "bench.scale_full_sim_round",
                lambda: run_specs(engine, specs, backend="vector"),
                n_relays=n,
            )
            row["full_sim_round_seconds"] = round(seconds, 4)
            assert len(outcomes) == n
        rows[str(n)] = row
        print(
            f"{'scale':22s} {n:>7d} relays  materialize "
            f"{row['materialize_seconds']:8.3f}s  round "
            f"{row['analytic_round_seconds']:8.4f}s"
            + (
                f"  full-sim {row['full_sim_round_seconds']:8.3f}s"
                if "full_sim_round_seconds" in row
                else ""
            )
        )
    return {
        "describe": (
            "columnar network materialization and one whole-network "
            "campaign round (analytic kernel, vector backend) per "
            "network size; the Tor-scale row also times one full "
            "per-second simulation round"
        ),
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "networks": rows,
    }


#: Stage-breakdown bench config: a whole-network campaign run under a
#: recording tracer (the same spans ``--trace`` streams to JSONL).
STAGES_BENCH_CONFIG = dict(n_relays=150, seed=51, backend="vector")


def measure_stages(repeats: int) -> dict:
    """Per-stage wall breakdown of a whole-network campaign.

    Installs a recording tracer for the campaign (exactly what
    ``ExecutionConfig(trace=...)`` does, minus the JSONL sink) and folds
    span wall time by name: where a campaign's time actually goes --
    resolve, pack, compile, execute, settle, fold -- rather than one
    end-to-end number. The breakdown kept is the fastest repeat's, so
    stage shares aren't polluted by warmup noise.
    """
    config = dict(STAGES_BENCH_CONFIG)
    best_tracer = None
    best_wall = float("inf")
    for _ in range(repeats):
        network = synthesize_network(
            n_relays=config["n_relays"], seed=config["seed"]
        )
        authority = quick_team(seed=config["seed"] + 1)
        campaign = Campaign(
            Scenario(name="bench-stages", network=network, team=authority),
            ExecutionConfig(backend=config["backend"]),
        )
        tracer = Tracer()
        with use_tracer(tracer):
            campaign.run()
        wall = tracer.wall_by_name().get("campaign", float("inf"))
        if wall < best_wall:
            best_wall, best_tracer = wall, tracer
    stages = {
        name: round(wall, 4)
        for name, wall in sorted(
            best_tracer.wall_by_name().items(), key=lambda kv: -kv[1]
        )
    }
    counts: dict[str, int] = {}
    for span in best_tracer.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    for name, wall in stages.items():
        print(f"{'stage_breakdown':22s} {name:18s} {wall:8.3f}s  "
              f"(x{counts[name]})")
    return {
        "describe": (
            "whole-network campaign under a recording tracer: total "
            "wall seconds per span name (fastest of N runs; child span "
            "time is also inside its parents' totals)"
        ),
        "config": config,
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "campaign_wall_seconds": round(best_wall, 4),
        "wall_seconds_by_stage": stages,
        "span_counts": {name: counts[name] for name in stages},
    }


#: Service bench config: a short analytic continuous deployment (the
#: daemon's steady-state unit of work) plus isolated churn-apply and
#: checkpoint costs at large-table sizes.
SERVICE_BENCH_CONFIG = dict(n_relays=40, periods=6, seed=7)
SERVICE_TABLE_NS = (1_000, 10_000)


def measure_service(repeats: int) -> dict:
    """Continuous-daemon throughput, checkpoint cost, and churn cost.

    Three rows: (1) a short analytic deployment through
    :func:`repro.service.run_daemon` on the simulated clock, reported
    as periods/minute -- the daemon's steady-state throughput; (2)
    snapshot write (state -> JSON line) and restore (JSON -> state)
    cost at 1k/10k-relay tables -- the per-boundary checkpoint tax; (3)
    churn derive+apply cost at the same table sizes. ``cpu_count``
    provenance lives in the block: the campaign inside each period
    parallelizes, so single-core CI numbers and workstation numbers
    are not comparable.
    """
    from repro.service import (
        NetworkTable,
        ServiceConfig,
        Snapshot,
        run_daemon,
    )
    from repro.service.churn import ChurnConfig, churn_events_for_period

    config = dict(SERVICE_BENCH_CONFIG)
    service_config = ServiceConfig(
        overrides={"n_relays": config["n_relays"]},
        periods=config["periods"],
        churn=ChurnConfig(seed=config["seed"], join_rate=2.0,
                          leave_fraction=0.1),
        execution=ExecutionConfig(full_simulation=False),
    )

    deploy_best = float("inf")
    daemon = None
    for _ in range(repeats):
        seconds, daemon = _timed(
            "bench.service_deployment",
            lambda: run_daemon(service_config),
            periods=config["periods"],
        )
        deploy_best = min(deploy_best, seconds)
    assert daemon.next_period == config["periods"]
    periods_per_minute = config["periods"] / (deploy_best / 60.0)
    print(f"{'service_deployment':22s} {config['periods']} periods "
          f"{deploy_best:8.3f}s  ({periods_per_minute:.1f} periods/min, "
          f"simulated clock)")

    tables = {}
    for n in SERVICE_TABLE_NS:
        table = NetworkTable.from_network(
            synthesize_network(n_relays=n, seed=71)
        )
        snapshot = Snapshot(
            next_period=1,
            table=table,
            history={fp: (row.capacity, 0) for fp, row in table.rows.items()},
            published=1,
            config=service_config,
        )
        write_best = restore_best = float("inf")
        encoded = None
        for _ in range(max(repeats, 2)):
            seconds, encoded = _timed(
                "bench.service_checkpoint_write",
                lambda: json.dumps({"type": "snapshot", **snapshot.to_dict()}),
                n_relays=n,
            )
            write_best = min(write_best, seconds)
            seconds, restored = _timed(
                "bench.service_checkpoint_restore",
                lambda: Snapshot.from_dict(json.loads(encoded)),
                n_relays=n,
            )
            restore_best = min(restore_best, seconds)
        assert len(restored.table) == n

        churn_config = ChurnConfig(seed=config["seed"], join_rate=20.0,
                                   leave_fraction=0.02)
        members = table.fingerprints()
        churn_best = float("inf")
        counts = None
        for _ in range(max(repeats, 2)):
            scratch = NetworkTable(dict(table.rows))

            def derive_and_apply():
                events = churn_events_for_period(churn_config, 1, members)
                return scratch.apply_churn(events)

            seconds, counts = _timed(
                "bench.service_churn_apply", derive_and_apply, n_relays=n
            )
            churn_best = min(churn_best, seconds)
        tables[str(n)] = {
            "checkpoint_write_seconds": round(write_best, 5),
            "checkpoint_restore_seconds": round(restore_best, 5),
            "checkpoint_bytes": len(encoded),
            "churn_apply_seconds": round(churn_best, 5),
            "churn_events_applied": sum(counts.values()),
        }
        print(f"{'service_table':22s} {n:>7d} relays  checkpoint "
              f"{write_best * 1e3:7.2f}ms write / {restore_best * 1e3:7.2f}ms "
              f"restore  churn {churn_best * 1e3:7.2f}ms")

    return {
        "describe": (
            "continuous daemon: analytic deployment throughput on the "
            "simulated clock, snapshot write/restore cost, and churn "
            "derive+apply cost per network-table size"
        ),
        "config": config,
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "deployment": {
            "periods": config["periods"],
            "n_relays": config["n_relays"],
            "seconds": round(deploy_best, 4),
            "periods_per_minute": round(periods_per_minute, 2),
        },
        "tables": tables,
    }


#: Adversarial-round bench config: a mixed round of the four §5 attack
#: behaviours (all of which now compile into the kernel) plus honest
#: relays, timed on the stateful engine loop vs the vectorized kernel.
ATTACKS_BENCH_CONFIG = dict(n_specs=48, seed=37)


def _adversarial_round_specs(n_specs: int, seed: int):
    """One adversarial round: the four attacks cycled across relays."""
    from repro.attacks.relays import (
        ForgingRelayBehavior,
        RatioCheatingRelayBehavior,
        SelectiveCapacityRelayBehavior,
        TrafficLiarRelayBehavior,
    )

    behaviors = (
        lambda s: TrafficLiarRelayBehavior(lie_factor=25.0),
        lambda s: RatioCheatingRelayBehavior(),
        lambda s: ForgingRelayBehavior(forge_fraction=0.4, seed=s),
        lambda s: SelectiveCapacityRelayBehavior(seed=s),
        lambda s: None,  # honest relays interleave with the attackers
        lambda s: None,
    )
    params = FlashFlowParams()
    team = quick_team(seed=seed).team
    specs = []
    for i in range(n_specs):
        capacity = mbit(80 + 35 * (i % 13))
        specs.append(
            MeasurementSpec(
                target=Relay.with_capacity(
                    f"adv{i}", capacity, seed=seed + i,
                    behavior=behaviors[i % len(behaviors)](seed + 100 + i),
                ),
                assignments=allocate_capacity(
                    team, params.allocation_factor * capacity
                ),
                params=params,
                seed=seed + i,
                background_demand=mbit(20),
                enforce_admission=False,
            )
        )
    return specs


def measure_attacks(repeats: int) -> dict:
    """Compiled-adversary vs stateful wall time for an adversarial round.

    The four common §5 behaviours carry kernel programs, so a round
    full of attackers runs through the vectorized array walk with no
    stateful fallback. Times the same mixed adversarial round (attacks
    plus honest relays, background traffic on) as a stateful
    ``engine.run`` loop and as one ``run_specs`` call on the vector
    backend, verifies bit-identical estimates and failure flags, and
    records the inflation-sweep summary (every grid point under the
    1/(1-r) bound).
    """
    from repro.attacks.sweep import inflation_sweep
    from repro.kernel import run_specs
    from repro.obs.metrics import get_registry

    config = dict(ATTACKS_BENCH_CONFIG)
    rows: dict[str, float] = {}
    signatures = {}
    for name in ("stateful_loop", "compiled_kernel"):
        best = float("inf")
        for _ in range(repeats):
            specs = _adversarial_round_specs(config["n_specs"],
                                             config["seed"])
            engine = MeasurementEngine()
            if name == "stateful_loop":
                run = lambda: [engine.run(s) for s in specs]  # noqa: E731
            else:
                fallbacks = get_registry().counter("kernel.specs.fallback")
                before = fallbacks.value
                run = lambda: run_specs(engine, specs, backend="vector")  # noqa: E731
            seconds, outcomes = _timed("bench.attacks_round", run, mode=name)
            if name == "compiled_kernel" and fallbacks.value != before:
                raise SystemExit(
                    "attacks: adversarial specs took the stateful fallback"
                )
            best = min(best, seconds)
            signatures[name] = [
                (o.estimate, o.failed, o.failure_reason) for o in outcomes
            ]
        rows[name] = round(best, 4)
        print(f"{'attacks_round':22s} {name:15s} {best:8.3f}s  "
              f"({config['n_specs']} adversarial specs)")
    identical = signatures["stateful_loop"] == signatures["compiled_kernel"]
    if not identical:  # pragma: no cover - a correctness regression
        raise SystemExit("attacks: kernel disagrees with the stateful loop")

    points = inflation_sweep(
        behaviors=("traffic-liar", "ratio-cheater", "collusion"),
        fractions=(0.25,),
        n_relays=10,
    )
    if not all(p.within_bound for p in points):  # pragma: no cover
        raise SystemExit("attacks: an inflation-sweep point broke the bound")
    print(f"{'attacks_sweep':22s} {len(points)} points, worst inflation "
          f"{max(p.max_inflation for p in points):.3f} "
          f"(bound {points[0].bound:.3f})")
    return {
        "describe": (
            "mixed adversarial round (traffic liar, ratio cheater, "
            "forger, selective capacity, honest): stateful engine loop "
            "vs the compiled kernel walk, plus the inflation-sweep "
            "bound check"
        ),
        "config": config,
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "seconds": rows,
        "speedup_compiled_vs_stateful": round(
            rows["stateful_loop"] / rows["compiled_kernel"], 2
        ),
        "identical_estimates": identical,
        "inflation_sweep": [
            {
                "behavior": p.behavior,
                "adversary_fraction": p.adversary_fraction,
                "max_inflation": round(p.max_inflation, 4),
                "bound": round(p.bound, 4),
                "within_bound": p.within_bound,
                "torflow_inflation": p.torflow_inflation,
            }
            for p in points
        ],
    }


BENCHES = {
    "fig06_campaign": {
        "describe": "Figure 6 accuracy grid, 30 s slots",
        "timer": lambda mode, repeats: _time_spec_campaign(
            fig06_specs, mode, repeats
        ),
        "slot_seconds": 30,
    },
    "fig15_campaign": {
        "describe": "Figure 15/16 multiplier sweep, 60 s slots",
        "timer": lambda mode, repeats: _time_spec_campaign(
            fig15_specs, mode, repeats
        ),
        "slot_seconds": 60,
    },
    "network_campaign_200": {
        "describe": "Whole-network campaign, 200 synthesized relays",
        "timer": _time_network_campaign,
        "slot_seconds": 30,
    },
}


def run_benches(repeats: int) -> dict:
    # Warm the process pool (fork + import cost is a one-time constant,
    # not part of any campaign's steady-state cost).
    MeasurementEngine().run_many(fig06_specs(repetitions=1)[:16], backend="process")

    report = {
        "schema": "flashflow-bench-kernel/1",
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "benches": {},
    }
    for name, bench in BENCHES.items():
        rows: dict[str, float] = {}
        signatures = {}
        count = 0
        for mode in ("pr1_engine",) + BACKENDS:
            seconds, signature, count = bench["timer"](mode, repeats)
            rows[mode] = round(seconds, 4)
            signatures[mode] = signature
            print(f"{name:22s} {mode:11s} {seconds:8.3f}s  ({count} measurements)")
        identical = len({repr(s) for s in signatures.values()}) == 1
        entry = {
            "describe": bench["describe"],
            "measurements": count,
            "slot_seconds": bench["slot_seconds"],
            "seconds": rows,
            "speedup_vs_pr1": {
                mode: round(rows["pr1_engine"] / rows[mode], 2)
                for mode in BACKENDS
            },
            "speedup_process_vs_serial": round(
                rows["serial"] / rows["process"], 2
            ),
            "identical_estimates": identical,
        }
        if not identical:  # pragma: no cover - a correctness regression
            raise SystemExit(
                f"{name}: execution paths disagree on estimates: {signatures}"
            )
        report["benches"][name] = entry

    overhead = measure_api_overhead(repeats)
    if not overhead["identical_estimates"]:  # pragma: no cover
        raise SystemExit("api_overhead: API and direct paths disagree")
    if not overhead["within_2pct"]:  # pragma: no cover
        raise SystemExit(
            f"api_overhead: scenario-API path costs "
            f"{overhead['overhead_fraction'] * 100:.2f}% (> 2% budget)"
        )
    report["api_overhead"] = overhead
    report["shadow_flow"] = measure_shadow_flow(repeats)
    report["analytic"] = measure_analytic(repeats)
    report["pipeline"] = measure_pipeline(repeats)
    report["scale"] = measure_scale(repeats)
    report["stage_breakdown"] = measure_stages(repeats)
    report["service"] = measure_service(repeats)
    report["attacks"] = measure_attacks(repeats)
    report["lint"] = measure_lint(repeats)
    return report


def measure_lint(repeats: int) -> dict:
    """Full-tree wall time of the determinism & layering lint.

    Times ``repro.analysis`` (parse + all rules + suppression filter +
    baseline match) over the whole ``src/`` tree -- the exact work the
    CI ``lint`` job does on every push. Budget: the full tree must lint
    in under 5 seconds, so the lint stays cheap enough to run locally
    before every commit rather than only in CI.
    """
    from repro.analysis import load_baseline, match_baseline, run_paths

    root = pathlib.Path(__file__).resolve().parents[1]
    src = root / "src"
    baseline_path = root / ".ff-lint-baseline.json"
    best = float("inf")
    for _ in range(repeats):
        seconds, findings = _timed(
            "bench.lint_tree", lambda: run_paths([src], root=root)
        )
        best = min(best, seconds)
    entries = load_baseline(baseline_path)
    new, matched, stale = match_baseline(findings, entries)
    if new or stale:
        raise SystemExit(
            f"lint bench: tree is not clean ({len(new)} new, "
            f"{len(stale)} stale) -- fix or --update-baseline first"
        )
    n_files = sum(1 for _ in src.rglob("*.py"))
    if best >= 5.0:
        raise SystemExit(
            f"lint bench: full tree took {best:.2f}s (>= 5s budget)"
        )
    return {
        "generated_unix": int(time.time()),
        "repeats": repeats,
        "files_linted": n_files,
        "wall_seconds_full_tree": round(best, 4),
        "files_per_second": round(n_files / best, 1),
        "findings_baselined": len(matched),
        "budget_seconds": 5.0,
    }


def _merge_block(output: pathlib.Path, key: str, block: dict) -> None:
    """Merge one bench block into the output JSON, leaving the rest.

    Each block carries its own ``generated_unix``/``repeats`` provenance,
    so a partial re-run never inherits another bench's timestamp.
    """
    report = (
        json.loads(output.read_text())
        if output.exists()
        else {"schema": "flashflow-bench-kernel/1"}
    )
    report[key] = block
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per path (best-of-N)")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--shadow", action="store_true",
        help="run only the shadow flow-simulator bench and merge its "
             "block into the existing output JSON",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="run only the analytic-kernel bench and merge its block "
             "into the existing output JSON",
    )
    parser.add_argument(
        "--pipeline", action="store_true",
        help="run only the pipelined-rounds bench and merge its block "
             "into the existing output JSON",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="run only the Tor-scale materialization/round bench and "
             "merge its block into the existing output JSON",
    )
    parser.add_argument(
        "--stages", action="store_true",
        help="run only the traced stage-breakdown bench and merge its "
             "block into the existing output JSON",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="run only the continuous-daemon bench and merge its block "
             "into the existing output JSON",
    )
    parser.add_argument(
        "--attacks", action="store_true",
        help="run only the adversarial-round bench (compiled vs "
             "stateful) and merge its block into the existing output "
             "JSON",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run only the full-tree static-analysis bench and merge "
             "its block into the existing output JSON",
    )
    args = parser.parse_args()

    if args.shadow or args.analytic or args.pipeline or args.scale \
            or args.stages or args.service or args.attacks or args.lint:
        # Merge only the requested blocks; the other benches' numbers
        # (and the top-level timestamp describing them) are untouched.
        if args.shadow:
            shadow = measure_shadow_flow(args.repeats)
            _merge_block(args.output, "shadow_flow", shadow)
            print(f"  shadow_flow: vector "
                  f"{shadow['speedup_vector_vs_stateful']}x vs stateful")
        if args.analytic:
            analytic = measure_analytic(args.repeats)
            _merge_block(args.output, "analytic", analytic)
            print(f"  analytic: kernel "
                  f"{analytic['speedup_analytic_vs_stateful']}x vs "
                  f"stateful loop")
        if args.pipeline:
            pipeline = measure_pipeline(args.repeats)
            _merge_block(args.output, "pipeline", pipeline)
            print(f"  pipeline: "
                  f"{pipeline['speedup_pipelined_vs_batch']}x vs batch")
        if args.scale:
            scale = measure_scale(args.repeats)
            _merge_block(args.output, "scale", scale)
            biggest = scale["networks"][str(max(SCALE_NS))]
            print(f"  scale: {max(SCALE_NS)} relays materialize in "
                  f"{biggest['materialize_seconds']}s")
        if args.stages:
            stages = measure_stages(args.repeats)
            _merge_block(args.output, "stage_breakdown", stages)
            print(f"  stage_breakdown: campaign "
                  f"{stages['campaign_wall_seconds']}s across "
                  f"{len(stages['wall_seconds_by_stage'])} stages")
        if args.service:
            service = measure_service(args.repeats)
            _merge_block(args.output, "service", service)
            print(f"  service: "
                  f"{service['deployment']['periods_per_minute']} "
                  f"periods/min on the simulated clock")
        if args.attacks:
            attacks = measure_attacks(args.repeats)
            _merge_block(args.output, "attacks", attacks)
            print(f"  attacks: compiled "
                  f"{attacks['speedup_compiled_vs_stateful']}x vs "
                  f"stateful adversarial round")
        if args.lint:
            lint = measure_lint(args.repeats)
            _merge_block(args.output, "lint", lint)
            print(f"  lint: {lint['files_linted']} files in "
                  f"{lint['wall_seconds_full_tree']}s "
                  f"({lint['files_per_second']} files/s)")
        return

    report = run_benches(args.repeats)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    for name, entry in report["benches"].items():
        print(
            f"  {name}: process {entry['speedup_process_vs_serial']}x vs serial, "
            f"vector {entry['speedup_vs_pr1']['vector']}x vs PR 1 engine"
        )
    print(
        f"  api_overhead: "
        f"{report['api_overhead']['overhead_fraction'] * 100:+.2f}% "
        f"(budget 2%)"
    )
    print(
        f"  shadow_flow: vector "
        f"{report['shadow_flow']['speedup_vector_vs_stateful']}x vs stateful"
    )
    print(
        f"  analytic: kernel "
        f"{report['analytic']['speedup_analytic_vs_stateful']}x vs "
        f"stateful loop"
    )
    print(
        f"  pipeline: "
        f"{report['pipeline']['speedup_pipelined_vs_batch']}x vs batch"
    )


if __name__ == "__main__":
    main()
