#!/usr/bin/env bash
# Collection-clean tier-1 test run.
#
# Stray __pycache__ directories are the classic cause of pytest's
# "import file mismatch" collection error when test basenames repeat
# across packages, so wipe them before collecting. Extra pytest args
# pass straight through (e.g. scripts/tier1.sh -m "not bench").
set -euo pipefail
cd "$(dirname "$0")/.."
find . -name __pycache__ -type d -prune -exec rm -rf {} +
find . -name '*.pyc' -delete
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -x -q "$@"
